"""Scenario specifications: every experiment knob in one frozen, serializable value.

The paper's most actionable results are counterfactuals — how many deployments
would move into the 1-RTT / non-amplifying class if certificate compression
were universal, chains were trimmed, or clients sent larger Initials.  A
:class:`ScenarioSpec` bundles all the knobs such a what-if experiment turns —
population fractions, the CA-chain/key-algorithm mix, compression adoption,
server-behaviour profile substitutions, the client's analysis Initial size —
into one named value that travels through the whole pipeline:

* :meth:`ScenarioSpec.population_config` derives the
  :class:`~repro.webpki.population.PopulationConfig` (fraction overrides
  applied, the spec embedded in ``config.scenario``), which is the single
  object every generation and scan path already threads.
* The population generator applies :meth:`transform_skeletons` to each shard's
  phase-1 skeletons *after* the RNG stream has been consumed.  Transforms are
  pure rewrites that draw no randomness, so the per-shard RNG contract of
  ``(seed, shard_index)`` is untouched: for transform-only scenarios the same
  seed denotes the same domains, DNS outcomes, archetypes and addresses as
  baseline (``population_overrides``, by contrast, change the config *before*
  generation and deliberately denote a different population), and the
  ``baseline-2022`` identity scenario is byte-for-byte the plain pipeline.
* :meth:`fingerprint` is stamped into every streamed
  :class:`~repro.scanners.streaming.ShardSummary`;
  :class:`~repro.scanners.streaming.CampaignReducer` refuses to merge
  summaries reduced under different scenarios.
* :func:`repro.analysis.report.build_report` stamps any non-identity scenario
  into the report header (the identity scenario renders the legacy header, so
  golden digests stay pinned).

Specs are plain frozen dataclasses of primitives: hashable, picklable (they
ride inside :class:`~repro.scanners.sharding.ShardTask` into worker
processes) and JSON round-trippable for sharing scenario files.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..quic.profiles import (
    BUILTIN_PROFILES,
    ServerBehaviorProfile,
    with_universal_compression,
    without_compression,
)
from ..tls.cert_compression import CertificateCompressionAlgorithm
from ..x509.keys import KeyAlgorithm

#: Client Initial sizes the wire model covers (RFC 9000 minimum to the MTU).
MIN_INITIAL_SIZE = 1200
MAX_INITIAL_SIZE = 1472

_KEY_ALGORITHMS_BY_LABEL: Dict[str, KeyAlgorithm] = {
    algorithm.label: algorithm for algorithm in KeyAlgorithm
}

_COMPRESSION_BY_LABEL: Dict[str, CertificateCompressionAlgorithm] = {
    algorithm.label: algorithm for algorithm in CertificateCompressionAlgorithm
}


class ScenarioError(ValueError):
    """A scenario is unknown, malformed, or inconsistent with its campaign."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One named what-if experiment over the reproduction pipeline.

    Every knob defaults to "leave the baseline alone"; a spec with no knob set
    (:attr:`is_identity`) reproduces the plain pipeline byte-for-byte.
    """

    name: str
    #: Human-readable one-liner shown by ``repro scenarios`` and stamped into
    #: reports; never part of the :meth:`fingerprint`.
    description: str = ""
    #: ``(field, value)`` overrides applied over the default
    #: :class:`~repro.webpki.population.PopulationConfig` fractions (e.g.
    #: ``(("no_compression_fraction", 0.0),)``).  ``size``/``seed``/``scenario``
    #: are campaign parameters, not scenario knobs, and are rejected.
    population_overrides: Tuple[Tuple[str, float], ...] = ()
    #: Force every issued leaf onto this key algorithm (``None``: keep the
    #: archetype-drawn mix).
    leaf_key_algorithm: Optional[KeyAlgorithm] = None
    #: Deliver at most this many certificates per chain (leaf first); drops
    #: superfluous roots, cross-signs and bloat duplicates.  ``None``: keep
    #: chains as issued.
    trim_chain_depth: Optional[int] = None
    #: Give every server behaviour profile RFC 8879 support (brotli) — the
    #: server half of the "universal certificate compression" counterfactual.
    universal_compression: bool = False
    #: RFC 8879 algorithms the scanning *client* offers during the single-size
    #: analysis scan.  The paper's scanner (and therefore the baseline)
    #: offered none, so server-side support only shows up in the Table 1
    #: support scan; a universal-adoption counterfactual offers brotli here so
    #: compressed flights actually shift the handshake-class funnel.
    client_compression: Tuple[CertificateCompressionAlgorithm, ...] = ()
    #: ``(profile name, replacement name)`` substitutions over the built-in
    #: server behaviour profiles (e.g. ``(("mvfst-like", "mvfst-patched"),)``).
    profile_overrides: Tuple[Tuple[str, str], ...] = ()
    #: Client Initial size used for the single-size analysis scan (``None``:
    #: the pipeline default, 1362 bytes).
    analysis_initial_size: Optional[int] = None
    #: Fraction of servers that deploy RFC 8879 certificate compression —
    #: the *partial*-adoption counterfactual behind adoption-curve sweeps.
    #: Adopters gain brotli; every *other* server has compression stripped
    #: (several baseline stacks already link a capable TLS library, so
    #: without stripping the curve's low end would not be a no-compression
    #: world).  Selection is a deterministic, RNG-free hash of the domain
    #: name and is monotone in the fraction: a domain that adopts at 30%
    #: still adopts at 40%, so grid points nest the way a real rollout
    #: would.  ``None`` keeps the baseline mix; ``1.0`` is equivalent
    #: (wire-byte-for-wire-byte) to :attr:`universal_compression`, which
    #: supersedes this knob when both are set.  Like the other knobs this
    #: only flips *server* support; pair it with ``client_compression`` so
    #: compressed flights actually happen.
    compression_adoption: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("a scenario needs a non-empty name")
        # Normalise mapping-typed knobs (sorted by key) so equality is
        # canonical: a spec equals its own JSON round-trip however the caller
        # ordered the pairs.
        object.__setattr__(
            self,
            "population_overrides",
            tuple(sorted(tuple(item) for item in self.population_overrides)),
        )
        object.__setattr__(
            self,
            "profile_overrides",
            tuple(sorted(tuple(item) for item in self.profile_overrides)),
        )
        for label, pairs in (
            ("population_overrides", self.population_overrides),
            ("profile_overrides", self.profile_overrides),
        ):
            keys = [key for key, _ in pairs]
            if len(keys) != len(set(keys)):
                duplicates = sorted({key for key in keys if keys.count(key) > 1})
                raise ScenarioError(
                    f"scenario {self.name!r}: duplicate {label} key(s): "
                    f"{', '.join(duplicates)}"
                )
        object.__setattr__(self, "client_compression", tuple(self.client_compression))
        for algorithm in self.client_compression:
            if not isinstance(algorithm, CertificateCompressionAlgorithm):
                raise ScenarioError(
                    f"scenario {self.name!r}: client_compression entries must be "
                    f"CertificateCompressionAlgorithm values (got {algorithm!r})"
                )
        if self.trim_chain_depth is not None and (
            not isinstance(self.trim_chain_depth, int)
            or isinstance(self.trim_chain_depth, bool)
            or self.trim_chain_depth < 1
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: trim_chain_depth must be an integer >= 1 "
                f"(got {self.trim_chain_depth!r})"
            )
        if self.analysis_initial_size is not None and (
            not isinstance(self.analysis_initial_size, int)
            or isinstance(self.analysis_initial_size, bool)
            or not (MIN_INITIAL_SIZE <= self.analysis_initial_size <= MAX_INITIAL_SIZE)
        ):
            raise ScenarioError(
                f"scenario {self.name!r}: analysis_initial_size must be an integer "
                f"within [{MIN_INITIAL_SIZE}, {MAX_INITIAL_SIZE}] "
                f"(got {self.analysis_initial_size!r})"
            )
        if self.compression_adoption is not None:
            if (
                not isinstance(self.compression_adoption, (int, float))
                or isinstance(self.compression_adoption, bool)
                or not (0.0 <= self.compression_adoption <= 1.0)
            ):
                raise ScenarioError(
                    f"scenario {self.name!r}: compression_adoption must be a "
                    f"fraction within [0.0, 1.0] (got {self.compression_adoption!r})"
                )
            # Normalise to float so 0 and 0.0 fingerprint identically.
            object.__setattr__(
                self, "compression_adoption", float(self.compression_adoption)
            )
        for source, target in self.profile_overrides:
            if source not in BUILTIN_PROFILES:
                raise ScenarioError(
                    f"scenario {self.name!r}: profile override source {source!r} "
                    f"is not a built-in server behaviour profile"
                )
            if target not in BUILTIN_PROFILES:
                raise ScenarioError(
                    f"scenario {self.name!r}: profile override target {target!r} "
                    f"is not a built-in server behaviour profile"
                )
        for key, value in self.population_overrides:
            if key in ("size", "seed", "scenario"):
                raise ScenarioError(
                    f"scenario {self.name!r}: {key!r} is a campaign parameter, "
                    f"not a scenario population knob"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ScenarioError(
                    f"scenario {self.name!r}: population override {key!r} must "
                    f"be a number (got {value!r})"
                )

    # -- identity and fingerprinting -------------------------------------------

    @property
    def is_identity(self) -> bool:
        """True when no knob is set: the pipeline behaves exactly as baseline."""
        return (
            not self.population_overrides
            and self.leaf_key_algorithm is None
            and self.trim_chain_depth is None
            and not self.universal_compression
            and not self.client_compression
            and not self.profile_overrides
            and self.analysis_initial_size is None
            and self.compression_adoption is None
        )

    def canonical_dict(self) -> Dict[str, object]:
        """The fingerprinted knob set (description excluded: it is cosmetic)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "population": {key: value for key, value in self.population_overrides},
            "leaf_key_algorithm": (
                self.leaf_key_algorithm.label if self.leaf_key_algorithm else None
            ),
            "trim_chain_depth": self.trim_chain_depth,
            "universal_compression": self.universal_compression,
            "client_compression": [algorithm.label for algorithm in self.client_compression],
            "profile_overrides": {source: target for source, target in self.profile_overrides},
            "analysis_initial_size": self.analysis_initial_size,
        }
        # Knobs that postdate the fingerprint format join the canonical dict
        # only when set, so every pre-existing spec — baseline included —
        # keeps its fingerprint (and therefore its golden digests, checkpoint
        # addresses and report stamps) byte-for-byte.
        if self.compression_adoption is not None:
            payload["compression_adoption"] = self.compression_adoption
        return payload

    def fingerprint(self) -> str:
        """SHA-256 over the canonical knob set.

        Stamped into every :class:`~repro.scanners.streaming.ShardSummary` so
        the reducer can reject merges of shards scanned under different
        scenarios.  Memoized on the frozen instance.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            payload = json.dumps(self.canonical_dict(), sort_keys=True).encode("utf-8")
            cached = hashlib.sha256(payload).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload = self.canonical_dict()
        payload["description"] = self.description
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioSpec":
        if not isinstance(payload, dict):
            raise ScenarioError(f"a scenario must be a JSON object, not {type(payload).__name__}")
        known = {
            "name", "description", "population", "leaf_key_algorithm",
            "trim_chain_depth", "universal_compression", "client_compression",
            "profile_overrides", "analysis_initial_size", "compression_adoption",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ScenarioError(f"unknown scenario field(s): {', '.join(unknown)}")
        key_label = payload.get("leaf_key_algorithm")
        leaf_key_algorithm = None
        if key_label is not None:
            leaf_key_algorithm = _KEY_ALGORITHMS_BY_LABEL.get(str(key_label))
            if leaf_key_algorithm is None:
                raise ScenarioError(
                    f"unknown leaf_key_algorithm {key_label!r} "
                    f"(known: {', '.join(sorted(_KEY_ALGORITHMS_BY_LABEL))})"
                )
        population = payload.get("population") or {}
        profile_overrides = payload.get("profile_overrides") or {}
        if not isinstance(population, dict) or not isinstance(profile_overrides, dict):
            raise ScenarioError("'population' and 'profile_overrides' must be JSON objects")
        raw_compression = payload.get("client_compression") or []
        if not isinstance(raw_compression, (list, tuple)):
            raise ScenarioError(
                "'client_compression' must be a JSON array of algorithm labels "
                f"(got {raw_compression!r})"
            )
        client_compression: List[CertificateCompressionAlgorithm] = []
        for label in raw_compression:
            algorithm = _COMPRESSION_BY_LABEL.get(str(label))
            if algorithm is None:
                raise ScenarioError(
                    f"unknown client_compression algorithm {label!r} "
                    f"(known: {', '.join(sorted(_COMPRESSION_BY_LABEL))})"
                )
            client_compression.append(algorithm)
        return cls(
            name=str(payload.get("name", "")),
            description=str(payload.get("description", "")),
            population_overrides=tuple(sorted(population.items())),
            leaf_key_algorithm=leaf_key_algorithm,
            trim_chain_depth=payload.get("trim_chain_depth"),
            universal_compression=bool(payload.get("universal_compression", False)),
            client_compression=tuple(client_compression),
            profile_overrides=tuple(sorted(profile_overrides.items())),
            analysis_initial_size=payload.get("analysis_initial_size"),
            compression_adoption=payload.get("compression_adoption"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"scenario is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str) -> "ScenarioSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise ScenarioError(f"cannot read scenario file {path!r}: {error}") from error
        return cls.from_json(text)

    # -- deriving the population config ----------------------------------------

    def population_config(self, size: Optional[int] = None, seed: Optional[int] = None,
                          base=None):
        """Derive the :class:`PopulationConfig` this scenario scans.

        Fraction overrides are applied over ``base`` (default: the baseline
        defaults), ``size``/``seed`` are taken from the arguments (or kept
        from ``base``), and the spec itself is embedded as
        ``config.scenario`` so every generation path downstream applies the
        skeleton transform without further plumbing.
        """
        from ..webpki.population import PopulationConfig

        base = base if base is not None else PopulationConfig()
        embedded = getattr(base, "scenario", None)
        if embedded is not None and embedded != self:
            raise ScenarioError(
                f"population config already carries scenario {embedded.name!r}; "
                f"refusing to re-derive it for {self.name!r}"
            )
        valid = {field.name for field in dataclasses.fields(PopulationConfig)}
        overrides: Dict[str, object] = {}
        for key, value in self.population_overrides:
            if key not in valid:
                raise ScenarioError(
                    f"scenario {self.name!r} overrides unknown population knob {key!r}"
                )
            overrides[key] = value
        if size is not None:
            overrides["size"] = size
        if seed is not None:
            overrides["seed"] = seed
        try:
            return dataclasses.replace(base, scenario=self, **overrides)
        except ValueError as error:
            # PopulationConfig.__post_init__ sanity checks (fraction sums etc.)
            # surface as the scenario's problem: it supplied the overrides.
            raise ScenarioError(
                f"scenario {self.name!r} derives an invalid population config: {error}"
            ) from error

    # -- the skeleton transform (phase 1.5) ------------------------------------

    def _profile_map(self) -> Dict[str, ServerBehaviorProfile]:
        cached = getattr(self, "_profile_map_cache", None)
        if cached is None:
            cached = {
                source: BUILTIN_PROFILES[target]
                for source, target in self.profile_overrides
            }
            object.__setattr__(self, "_profile_map_cache", cached)
        return cached

    def adopts_compression(self, domain: str) -> bool:
        """Whether ``domain`` deploys RFC 8879 under this scenario's adoption fraction.

        Deterministic and RNG-free (a SHA-256 of the domain mapped onto
        ``[0, 1)``), so it composes with the per-shard RNG contract exactly
        like every other skeleton transform.  Monotone in
        :attr:`compression_adoption`: the adopter set at fraction *f* is a
        subset of the set at any *f' > f*.
        """
        if self.compression_adoption is None:
            return False
        if self.compression_adoption >= 1.0:
            return True
        digest = hashlib.sha256(
            f"compression-adoption:{domain}".encode("utf-8")
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.compression_adoption

    def transform_server_behavior(
        self, behavior: Optional[ServerBehaviorProfile]
    ) -> Optional[ServerBehaviorProfile]:
        """Apply profile substitutions and compression adoption to one profile."""
        if behavior is None:
            return None
        replacement = self._profile_map().get(behavior.name)
        if replacement is not None:
            behavior = replacement
        if self.universal_compression:
            behavior = with_universal_compression(behavior)
        return behavior

    def _transform_chain_spec(self, spec):
        if spec is None:
            return None
        changes: Dict[str, object] = {}
        if (
            self.leaf_key_algorithm is not None
            and spec.key_algorithm is not self.leaf_key_algorithm
        ):
            changes["key_algorithm"] = self.leaf_key_algorithm
        if self.trim_chain_depth is not None and spec.trim_to != self.trim_chain_depth:
            # The recorded bloat extras are kept: materialisation appends them
            # before trimming, so a trim depth larger than the base chain
            # still caps (rather than erases) the bloated-chain tail.
            changes["trim_to"] = self.trim_chain_depth
        return dataclasses.replace(spec, **changes) if changes else spec

    def transform_skeleton(self, skeleton):
        """Rewrite one phase-1 deployment skeleton under this scenario.

        Pure and randomness-free: the skeleton pass has already consumed the
        shard's RNG stream, so rewriting recorded chain specs and behaviour
        profiles cannot shift any other domain's draws.  Identity knobs return
        the input object unchanged.
        """
        changes: Dict[str, object] = {}
        behavior = self.transform_server_behavior(skeleton.server_behavior)
        if (
            behavior is not None
            and not self.universal_compression
            and self.compression_adoption is not None
        ):
            # Partial adoption is per-domain, so it lives here (where the
            # domain is known) rather than in transform_server_behavior.
            # Both helpers are lru_cached: every (non-)adopter of the same
            # base profile shares one substituted instance, keeping the
            # flight-plan and columnar caches keyed identically.
            if self.adopts_compression(skeleton.domain):
                behavior = with_universal_compression(behavior)
            else:
                behavior = without_compression(behavior)
        if behavior is not skeleton.server_behavior:
            changes["server_behavior"] = behavior
        for attribute in ("https_spec", "quic_spec"):
            spec = getattr(skeleton, attribute)
            transformed = self._transform_chain_spec(spec)
            if transformed is not spec:
                changes[attribute] = transformed
        return dataclasses.replace(skeleton, **changes) if changes else skeleton

    def transform_skeletons(self, skeletons: Sequence) -> List:
        """Rewrite a whole shard's skeletons (no-op for identity scenarios)."""
        if self.is_identity:
            return list(skeletons)
        return [self.transform_skeleton(skeleton) for skeleton in skeletons]
