"""Built-in scenarios: the 2022 baseline plus the paper's what-if campaigns.

Each entry answers one counterfactual question the paper raises but a single
reproduction run cannot: what moves into the 1-RTT / non-amplifying class if
the ecosystem changes?  Run one with ``repro campaign --scenario NAME`` (or a
JSON file in the same shape as :meth:`ScenarioSpec.to_json`), list them with
``repro scenarios``, and diff several with
:func:`repro.scenarios.compare_scenarios`.
"""

from __future__ import annotations

import os
from typing import Dict

from ..tls.cert_compression import CertificateCompressionAlgorithm
from ..x509.keys import KeyAlgorithm
from .spec import ScenarioError, ScenarioSpec

#: The identity scenario: the paper's 2022 Internet exactly as the seed
#: reproduction calibrates it.  Guaranteed byte-identical to running the
#: pipeline with no scenario at all (tests/test_golden_report.py pins the
#: artefact digests; tests/test_scenarios.py pins the equivalence).
BASELINE = ScenarioSpec(
    name="baseline-2022",
    description=(
        "The 2022 baseline as measured by the paper; identity scenario, "
        "byte-identical to running without --scenario."
    ),
)

#: Precomputed fingerprint a scenario-less pipeline stamps into summaries.
BASELINE_FINGERPRINT = BASELINE.fingerprint()

UNIVERSAL_COMPRESSION = ScenarioSpec(
    name="universal-compression",
    description=(
        "What if RFC 8879 were universal? Every server gains brotli support "
        "and the scanning client offers it, so compressed flights shift the "
        "handshake-class funnel."
    ),
    universal_compression=True,
    client_compression=(CertificateCompressionAlgorithm.BROTLI,),
)

ECDSA_ONLY = ScenarioSpec(
    name="ecdsa-only",
    description=(
        "What if every leaf certificate used an ECDSA P-256 key instead of "
        "the observed RSA-heavy mix?"
    ),
    leaf_key_algorithm=KeyAlgorithm.ECDSA_P256,
)

TRIMMED_CHAINS = ScenarioSpec(
    name="trimmed-chains",
    description=(
        "What if servers delivered lean two-certificate chains — no "
        "superfluous roots, cross-signs or duplicated intermediates?"
    ),
    trim_chain_depth=2,
)

LARGE_INITIALS = ScenarioSpec(
    name="large-initials",
    description=(
        "What if clients sent 1400-byte Initials instead of the Firefox-like "
        "1362 bytes, buying every server a larger amplification budget?"
    ),
    analysis_initial_size=1400,
)

MVFST_PATCHED_WORLD = ScenarioSpec(
    name="mvfst-patched",
    description=(
        "What if Meta's October 2022 mvfst fix had shipped before the scans? "
        "No more retransmission storms towards unvalidated clients."
    ),
    profile_overrides=(("mvfst-like", "mvfst-patched"),),
)

BUILTIN_SCENARIOS: Dict[str, ScenarioSpec] = {
    scenario.name: scenario
    for scenario in (
        BASELINE,
        UNIVERSAL_COMPRESSION,
        ECDSA_ONLY,
        TRIMMED_CHAINS,
        LARGE_INITIALS,
        MVFST_PATCHED_WORLD,
    )
}


def load_scenario(name_or_path: str) -> ScenarioSpec:
    """Resolve a scenario by built-in name or JSON file path.

    Built-in names win; anything that looks like (or is) a file on disk is
    parsed as a scenario JSON file.  Unknown names raise a
    :class:`ScenarioError` that lists the built-ins.
    """
    scenario = BUILTIN_SCENARIOS.get(name_or_path)
    if scenario is not None:
        return scenario
    if os.path.exists(name_or_path) or name_or_path.endswith(".json"):
        return ScenarioSpec.from_file(name_or_path)
    raise ScenarioError(
        f"unknown scenario {name_or_path!r}: not a built-in "
        f"({', '.join(sorted(BUILTIN_SCENARIOS))}) and not a scenario JSON file"
    )
