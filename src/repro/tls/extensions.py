"""TLS extensions relevant to the QUIC handshake.

Only the wire framing (2-byte type, 2-byte length, body) and the bodies that
influence sizes or behaviour are modelled:

* ``server_name`` (SNI) — size scales with the domain name,
* ``supported_versions``, ``key_share``, ``signature_algorithms``,
  ``supported_groups``, ``application_layer_protocol_negotiation`` — fixed or
  near-fixed sizes,
* ``quic_transport_parameters`` — carried for QUIC,
* ``compress_certificate`` (RFC 8879) — the extension the paper's Table 1 and
  §4.2 revolve around.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Sequence, Tuple

from .cert_compression import CertificateCompressionAlgorithm


class ExtensionType(IntEnum):
    """IANA TLS ExtensionType values used in this project."""

    SERVER_NAME = 0
    SUPPORTED_GROUPS = 10
    SIGNATURE_ALGORITHMS = 13
    APPLICATION_LAYER_PROTOCOL_NEGOTIATION = 16
    COMPRESS_CERTIFICATE = 27
    SUPPORTED_VERSIONS = 43
    PSK_KEY_EXCHANGE_MODES = 45
    KEY_SHARE = 51
    QUIC_TRANSPORT_PARAMETERS = 57


@dataclass(frozen=True)
class TlsExtension:
    """A generic extension with opaque body bytes."""

    extension_type: int
    body: bytes

    def encode(self) -> bytes:
        return (
            int(self.extension_type).to_bytes(2, "big")
            + len(self.body).to_bytes(2, "big")
            + self.body
        )

    @property
    def size(self) -> int:
        return 4 + len(self.body)


def ServerNameExtension(host_name: str) -> TlsExtension:
    """server_name (RFC 6066): list of one host_name entry."""
    name_bytes = host_name.encode("ascii")
    entry = b"\x00" + len(name_bytes).to_bytes(2, "big") + name_bytes
    body = len(entry).to_bytes(2, "big") + entry
    return TlsExtension(ExtensionType.SERVER_NAME, body)


def SupportedVersionsExtension(client: bool = True) -> TlsExtension:
    if client:
        body = b"\x02\x03\x04"  # list: TLS 1.3
    else:
        body = b"\x03\x04"  # selected version
    return TlsExtension(ExtensionType.SUPPORTED_VERSIONS, body)


def SupportedGroupsExtension() -> TlsExtension:
    groups = (0x001D, 0x0017, 0x0018)  # x25519, secp256r1, secp384r1
    encoded = b"".join(g.to_bytes(2, "big") for g in groups)
    return TlsExtension(ExtensionType.SUPPORTED_GROUPS, len(encoded).to_bytes(2, "big") + encoded)


def SignatureAlgorithmsExtension() -> TlsExtension:
    schemes = (0x0403, 0x0503, 0x0804, 0x0805, 0x0401, 0x0501)
    encoded = b"".join(s.to_bytes(2, "big") for s in schemes)
    return TlsExtension(ExtensionType.SIGNATURE_ALGORITHMS, len(encoded).to_bytes(2, "big") + encoded)


def KeyShareExtension(client: bool = True, group: int = 0x001D, key_length: int = 32) -> TlsExtension:
    entry = group.to_bytes(2, "big") + key_length.to_bytes(2, "big") + bytes(key_length)
    if client:
        body = len(entry).to_bytes(2, "big") + entry
    else:
        body = entry
    return TlsExtension(ExtensionType.KEY_SHARE, body)


def AlpnExtension(protocols: Sequence[str] = ("h3",)) -> TlsExtension:
    encoded = b"".join(len(p).to_bytes(1, "big") + p.encode("ascii") for p in protocols)
    return TlsExtension(
        ExtensionType.APPLICATION_LAYER_PROTOCOL_NEGOTIATION,
        len(encoded).to_bytes(2, "big") + encoded,
    )


def QuicTransportParametersExtension(encoded_parameters: bytes) -> TlsExtension:
    return TlsExtension(ExtensionType.QUIC_TRANSPORT_PARAMETERS, encoded_parameters)


def CompressCertificateExtension(
    algorithms: Sequence[CertificateCompressionAlgorithm],
) -> TlsExtension:
    """compress_certificate (RFC 8879 §3): list of supported algorithm codes."""
    encoded = b"".join(int(alg.code).to_bytes(2, "big") for alg in algorithms)
    body = len(encoded).to_bytes(1, "big") + encoded
    return TlsExtension(ExtensionType.COMPRESS_CERTIFICATE, body)


def parse_compress_certificate(extension: TlsExtension) -> Tuple[CertificateCompressionAlgorithm, ...]:
    """Parse the algorithm list out of a compress_certificate extension."""
    if extension.extension_type != ExtensionType.COMPRESS_CERTIFICATE:
        raise ValueError("not a compress_certificate extension")
    body = extension.body
    if not body:
        return ()
    length = body[0]
    codes = body[1 : 1 + length]
    algorithms = []
    for index in range(0, len(codes) - 1, 2):
        code = int.from_bytes(codes[index : index + 2], "big")
        algorithms.append(CertificateCompressionAlgorithm.from_code(code))
    return tuple(algorithms)
