"""TLS 1.3 handshake substrate (RFC 8446) as used inside QUIC (RFC 9001).

QUIC carries the TLS 1.3 handshake messages in CRYPTO frames.  For the paper's
questions only the *sizes* and the *split across flights* of those messages
matter, plus the certificate-compression extension (RFC 8879).  This package
builds the handshake messages with realistic encodings so the server's first
flight size — ServerHello + EncryptedExtensions + Certificate +
CertificateVerify + Finished — is computed, not assumed.
"""

from .cipher_suites import CipherSuite
from .extensions import TlsExtension, ExtensionType, CompressCertificateExtension
from .cert_compression import (
    CertificateCompressionAlgorithm,
    CompressionResult,
    compress_certificate_chain,
    compression_ratio,
)
from .handshake_messages import (
    ClientHello,
    ServerHello,
    EncryptedExtensions,
    CertificateMessage,
    CompressedCertificateMessage,
    CertificateVerify,
    Finished,
    HandshakeType,
    ServerFirstFlight,
    build_server_first_flight,
)

__all__ = [
    "CipherSuite",
    "TlsExtension",
    "ExtensionType",
    "CompressCertificateExtension",
    "CertificateCompressionAlgorithm",
    "CompressionResult",
    "compress_certificate_chain",
    "compression_ratio",
    "HandshakeType",
    "ClientHello",
    "ServerHello",
    "EncryptedExtensions",
    "CertificateMessage",
    "CompressedCertificateMessage",
    "CertificateVerify",
    "Finished",
    "ServerFirstFlight",
    "build_server_first_flight",
]
