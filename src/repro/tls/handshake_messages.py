"""TLS 1.3 handshake messages carried inside QUIC CRYPTO frames.

Each message knows how to compute its wire encoding (4-byte handshake header
plus body).  The bodies are realistic: ClientHello carries the usual browser
extension set, the Certificate message carries the actual DER chain, and the
CertificateVerify size depends on the server's key algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from ..caching import cached_property  # lock-free (see repro.caching)
from typing import Optional, Sequence, Tuple

from ..x509.chain import CertificateChain
from ..x509.keys import KeyAlgorithm
from .cert_compression import (
    CertificateCompressionAlgorithm,
    CompressionResult,
    chain_payload,
    compress_certificate_chain,
)
from .cipher_suites import CipherSuite
from .extensions import (
    AlpnExtension,
    CompressCertificateExtension,
    KeyShareExtension,
    QuicTransportParametersExtension,
    ServerNameExtension,
    SignatureAlgorithmsExtension,
    SupportedGroupsExtension,
    SupportedVersionsExtension,
    TlsExtension,
)


class HandshakeType(IntEnum):
    """TLS 1.3 HandshakeType values (RFC 8446 §4, RFC 8879 §4)."""

    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    ENCRYPTED_EXTENSIONS = 8
    CERTIFICATE = 11
    CERTIFICATE_VERIFY = 15
    FINISHED = 20
    COMPRESSED_CERTIFICATE = 25


def _handshake_frame(message_type: HandshakeType, body: bytes) -> bytes:
    return bytes([message_type]) + len(body).to_bytes(3, "big") + body


@dataclass(frozen=True)
class HandshakeMessage:
    """Base class: concrete messages provide ``body()``.

    Messages are immutable, so the wire encoding (and therefore the size) is
    computed once and cached on the instance.
    """

    def body(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def message_type(self) -> HandshakeType:  # pragma: no cover - abstract
        raise NotImplementedError

    def encode(self) -> bytes:
        return self._encoded

    @cached_property
    def _encoded(self) -> bytes:
        return _handshake_frame(self.message_type, self.body())

    @cached_property
    def size(self) -> int:
        return len(self._encoded)


@dataclass(frozen=True)
class ClientHello(HandshakeMessage):
    """A browser-like ClientHello offering TLS 1.3 over QUIC."""

    server_name: str
    cipher_suites: Tuple[CipherSuite, ...] = CipherSuite.default_client_offer()
    compression_algorithms: Tuple[CertificateCompressionAlgorithm, ...] = ()
    transport_parameters: bytes = bytes(80)
    alpn: Tuple[str, ...] = ("h3",)
    extra_extensions: Tuple[TlsExtension, ...] = ()

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.CLIENT_HELLO

    def extensions(self) -> Tuple[TlsExtension, ...]:
        extensions = [
            ServerNameExtension(self.server_name),
            SupportedVersionsExtension(client=True),
            SupportedGroupsExtension(),
            SignatureAlgorithmsExtension(),
            KeyShareExtension(client=True),
            AlpnExtension(self.alpn),
            QuicTransportParametersExtension(self.transport_parameters),
        ]
        if self.compression_algorithms:
            extensions.append(CompressCertificateExtension(self.compression_algorithms))
        extensions.extend(self.extra_extensions)
        return tuple(extensions)

    @property
    def offers_compression(self) -> bool:
        return bool(self.compression_algorithms)

    def body(self) -> bytes:
        legacy_version = b"\x03\x03"
        random = bytes(32)
        legacy_session_id = b"\x00"
        suites = b"".join(suite.encode() for suite in self.cipher_suites)
        cipher_block = len(suites).to_bytes(2, "big") + suites
        legacy_compression = b"\x01\x00"
        extensions = b"".join(ext.encode() for ext in self.extensions())
        extension_block = len(extensions).to_bytes(2, "big") + extensions
        return (
            legacy_version
            + random
            + legacy_session_id
            + cipher_block
            + legacy_compression
            + extension_block
        )


@dataclass(frozen=True)
class ServerHello(HandshakeMessage):
    """ServerHello: fixed-size apart from the key share group."""

    cipher_suite: CipherSuite = CipherSuite.TLS_AES_128_GCM_SHA256
    key_share_length: int = 32

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.SERVER_HELLO

    def body(self) -> bytes:
        legacy_version = b"\x03\x03"
        random = bytes(32)
        legacy_session_id = b"\x00"
        suite = self.cipher_suite.encode()
        legacy_compression = b"\x00"
        extensions = (
            SupportedVersionsExtension(client=False).encode()
            + KeyShareExtension(client=False, key_length=self.key_share_length).encode()
        )
        return (
            legacy_version
            + random
            + legacy_session_id
            + suite
            + legacy_compression
            + len(extensions).to_bytes(2, "big")
            + extensions
        )


@dataclass(frozen=True)
class EncryptedExtensions(HandshakeMessage):
    """EncryptedExtensions with ALPN and QUIC transport parameters."""

    transport_parameters: bytes = bytes(90)
    alpn: Tuple[str, ...] = ("h3",)

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.ENCRYPTED_EXTENSIONS

    def body(self) -> bytes:
        extensions = (
            AlpnExtension(self.alpn).encode()
            + QuicTransportParametersExtension(self.transport_parameters).encode()
        )
        return len(extensions).to_bytes(2, "big") + extensions


@dataclass(frozen=True)
class CertificateMessage(HandshakeMessage):
    """The (uncompressed) Certificate message carrying the full chain."""

    chain: CertificateChain

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.CERTIFICATE

    def body(self) -> bytes:
        certificate_request_context = b"\x00"
        return certificate_request_context + chain_payload(cert.der for cert in self.chain)


@dataclass(frozen=True)
class CompressedCertificateMessage(HandshakeMessage):
    """RFC 8879 CompressedCertificate wrapping the Certificate message."""

    chain: CertificateChain
    algorithm: CertificateCompressionAlgorithm

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.COMPRESSED_CERTIFICATE

    def compression_result(self) -> CompressionResult:
        return self._compression_result

    @cached_property
    def _compression_result(self) -> CompressionResult:
        return compress_certificate_chain([c.der for c in self.chain], self.algorithm)

    def body(self) -> bytes:
        result = self.compression_result()
        inner = CertificateMessage(self.chain).body()
        return (
            int(self.algorithm.code).to_bytes(2, "big")
            + len(inner).to_bytes(3, "big")  # uncompressed_length
            + bytes(result.compressed_size)  # compressed_certificate_message placeholder bytes
        )


@dataclass(frozen=True)
class CertificateVerify(HandshakeMessage):
    """CertificateVerify; the signature size follows the server key algorithm."""

    key_algorithm: KeyAlgorithm

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.CERTIFICATE_VERIFY

    def body(self) -> bytes:
        if self.key_algorithm.is_rsa:
            signature_length = self.key_algorithm.bits // 8  # RSA-PSS
        elif self.key_algorithm is KeyAlgorithm.ECDSA_P384:
            signature_length = 103
        else:
            signature_length = 71
        scheme = b"\x08\x04" if self.key_algorithm.is_rsa else b"\x04\x03"
        return scheme + signature_length.to_bytes(2, "big") + bytes(signature_length)


@dataclass(frozen=True)
class Finished(HandshakeMessage):
    """Finished message; verify_data length follows the negotiated hash."""

    cipher_suite: CipherSuite = CipherSuite.TLS_AES_128_GCM_SHA256

    @property
    def message_type(self) -> HandshakeType:
        return HandshakeType.FINISHED

    def body(self) -> bytes:
        return bytes(self.cipher_suite.finished_size)


@dataclass(frozen=True)
class ServerFirstFlight:
    """The TLS messages a server sends in its first flight.

    ``initial_messages`` travel in QUIC Initial packets (ServerHello), the
    rest in QUIC Handshake packets.  The split matters because the paper's
    padding/coalescence findings are about how these bytes map onto datagrams.
    """

    server_hello: ServerHello
    encrypted_extensions: EncryptedExtensions
    certificate: HandshakeMessage
    certificate_verify: CertificateVerify
    finished: Finished
    compression: Optional[CertificateCompressionAlgorithm] = None

    @property
    def initial_crypto_size(self) -> int:
        """CRYPTO bytes carried at the Initial encryption level."""
        return self.server_hello.size

    @property
    def handshake_crypto_size(self) -> int:
        """CRYPTO bytes carried at the Handshake encryption level."""
        return (
            self.encrypted_extensions.size
            + self.certificate.size
            + self.certificate_verify.size
            + self.finished.size
        )

    @property
    def total_crypto_size(self) -> int:
        return self.initial_crypto_size + self.handshake_crypto_size

    @property
    def certificate_payload_size(self) -> int:
        return self.certificate.size


def build_server_first_flight(
    chain: CertificateChain,
    client_hello: Optional[ClientHello] = None,
    server_compression_algorithms: Sequence[CertificateCompressionAlgorithm] = (),
    cipher_suite: CipherSuite = CipherSuite.TLS_AES_128_GCM_SHA256,
) -> ServerFirstFlight:
    """Assemble the server's first TLS flight for a given certificate chain.

    Compression is applied only when both the client offered it and the server
    supports one of the offered algorithms (RFC 8879 §4), mirroring the
    deployment conditions analysed in the paper.
    """
    negotiated: Optional[CertificateCompressionAlgorithm] = None
    if client_hello is not None and client_hello.offers_compression:
        for algorithm in client_hello.compression_algorithms:
            if algorithm in server_compression_algorithms:
                negotiated = algorithm
                break

    certificate: HandshakeMessage
    if negotiated is not None:
        certificate = CompressedCertificateMessage(chain, negotiated)
    else:
        certificate = CertificateMessage(chain)

    return ServerFirstFlight(
        server_hello=ServerHello(cipher_suite=cipher_suite),
        encrypted_extensions=EncryptedExtensions(),
        certificate=certificate,
        certificate_verify=CertificateVerify(chain.leaf.key_algorithm),
        finished=Finished(cipher_suite),
        compression=negotiated,
    )
