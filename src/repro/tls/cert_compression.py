"""TLS certificate compression (RFC 8879).

The paper's §4.2 shows that compressing certificate chains keeps 99 % of them
below the QUIC anti-amplification limit, with a median compression rate of
≈65 % (synthetic) and ≈73 % measured in the wild with brotli.

Offline substitution
--------------------
The environment provides no ``brotli`` or ``zstandard`` modules, only zlib from
the standard library.  We therefore:

* run **real DEFLATE (zlib level 9)** over the DER bytes — this anchors the
  achievable ratio to the true entropy of the actual certificate encodings, and
* model the three RFC 8879 algorithms as a calibrated adjustment on top of the
  measured DEFLATE output.  Raw DEFLATE without a preset dictionary removes
  roughly 45 % of a chain's bytes (keys, signatures and serial numbers are
  incompressible); the deployed algorithms do considerably better on
  certificates because brotli ships a built-in static dictionary containing
  X.509/PKI boilerplate and the TLS implementations prime zlib/zstd with a
  certificate dictionary.  The adjustment factors below (compressed size
  relative to our raw-DEFLATE size) are calibrated so that the resulting rates
  match Table 1 of the paper (zlib ≈74 %, brotli ≈73 %, zstd ≈72 % of bytes
  removed) when applied to this project's DER chains.

The substitution is documented in DESIGN.md §2.  All downstream analyses only
depend on compressed sizes relative to the amplification limit; the real
DEFLATE pass anchors those sizes to the true redundancy of the encodings and
the calibration factor accounts for the dictionary advantage we cannot
reproduce offline.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

# Compressed size relative to our raw (dictionary-less) DEFLATE output.
# Calibrated against the per-algorithm rates in Table 1 of the paper.
_ZLIB_VS_DEFLATE = 0.50
_BROTLI_VS_DEFLATE = 0.52
_ZSTD_VS_DEFLATE = 0.54


class CertificateCompressionAlgorithm(Enum):
    """RFC 8879 algorithm code points."""

    ZLIB = (1, "zlib")
    BROTLI = (2, "brotli")
    ZSTD = (3, "zstd")

    def __init__(self, code: int, label: str) -> None:
        self.code = code
        self.label = label

    @classmethod
    def from_code(cls, code: int) -> "CertificateCompressionAlgorithm":
        for alg in cls:
            if alg.code == code:
                return alg
        raise ValueError(f"unknown certificate compression algorithm code: {code}")

    def compressed_size(self, payload: bytes) -> int:
        """Size of ``payload`` after compression with this algorithm."""
        return compressed_size_for_deflate(self, deflate_size(payload))


def deflate_size(payload: bytes) -> int:
    """Size of ``payload`` after the raw (dictionary-less) DEFLATE pass.

    This is the one genuinely expensive step of the model; callers that size
    several algorithms against the same payload (the columnar scan backend)
    run it once and scale with :func:`compressed_size_for_deflate`.
    """
    return len(zlib.compress(payload, level=9))


_DEFLATE_FACTORS = {
    CertificateCompressionAlgorithm.ZLIB: _ZLIB_VS_DEFLATE,
    CertificateCompressionAlgorithm.BROTLI: _BROTLI_VS_DEFLATE,
    CertificateCompressionAlgorithm.ZSTD: _ZSTD_VS_DEFLATE,
}


def compressed_size_for_deflate(
    algorithm: CertificateCompressionAlgorithm, deflate_length: int
) -> int:
    """Modelled RFC 8879 output size given a measured raw-DEFLATE size."""
    return max(1, int(round(deflate_length * _DEFLATE_FACTORS[algorithm])))


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing a certificate chain payload."""

    algorithm: CertificateCompressionAlgorithm
    uncompressed_size: int
    compressed_size: int

    @property
    def ratio(self) -> float:
        """Compression rate as "fraction of bytes removed" (the paper's metric).

        A rate of 0.65 means the output is 35 % of the input.
        """
        if self.uncompressed_size == 0:
            return 0.0
        return 1.0 - self.compressed_size / self.uncompressed_size

    @property
    def saved_bytes(self) -> int:
        return self.uncompressed_size - self.compressed_size

    def fits_within(self, byte_limit: int) -> bool:
        return self.compressed_size <= byte_limit


def chain_payload_size(chain) -> int:
    """Length of :func:`chain_payload` for a certificate chain, arithmetically.

    3-byte list prefix plus, per certificate, a 3-byte length, the DER bytes
    and a 2-byte empty extensions field.  Memoized on the (frozen) chain
    instance; accepts any object with a ``certificates`` tuple, so the x509
    layer needs no import from here.
    """
    cached = getattr(chain, "_payload_size", None)
    if cached is None:
        cached = 3 + sum(len(cert.der) + 5 for cert in chain.certificates)
        object.__setattr__(chain, "_payload_size", cached)
    return cached


def chain_deflate_size(chain) -> int:
    """Raw-DEFLATE size of a chain's TLS payload, memoized on the chain.

    The zlib pass is the one genuinely expensive step of the compression
    model; every consumer of the same chain instance — negotiated flights,
    the in-the-wild scan, the synthetic reduction — shares one measurement.
    """
    cached = getattr(chain, "_deflate_size", None)
    if cached is None:
        cached = deflate_size(chain_payload(cert.der for cert in chain.certificates))
        object.__setattr__(chain, "_deflate_size", cached)
    return cached


def chain_payload(der_certificates: Iterable[bytes]) -> bytes:
    """Concatenate certificates as they appear in a TLS Certificate message.

    Each CertificateEntry is a 3-byte length, the DER data and a 2-byte empty
    extensions field; the whole list carries a 3-byte length prefix.  This is
    the payload RFC 8879 compresses.
    """
    entries = b""
    for der in der_certificates:
        entries += len(der).to_bytes(3, "big") + der + b"\x00\x00"
    return len(entries).to_bytes(3, "big") + entries


def compress_certificate_chain(
    der_certificates: Sequence[bytes],
    algorithm: CertificateCompressionAlgorithm = CertificateCompressionAlgorithm.BROTLI,
) -> CompressionResult:
    """Compress a chain of DER certificates as RFC 8879 would on the wire."""
    payload = chain_payload(der_certificates)
    return CompressionResult(
        algorithm=algorithm,
        uncompressed_size=len(payload),
        compressed_size=algorithm.compressed_size(payload),
    )


def compression_ratio(result: CompressionResult) -> float:
    """Convenience accessor used by analysis code and notebooks."""
    return result.ratio
