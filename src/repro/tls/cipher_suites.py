"""TLS 1.3 cipher suites (RFC 8446 §B.4)."""

from enum import Enum


class CipherSuite(Enum):
    """The three TLS 1.3 suites; QUIC deployments use the first two almost exclusively."""

    TLS_AES_128_GCM_SHA256 = (0x1301, 16, 32)
    TLS_AES_256_GCM_SHA384 = (0x1302, 32, 48)
    TLS_CHACHA20_POLY1305_SHA256 = (0x1303, 32, 32)

    def __init__(self, code: int, key_length: int, hash_length: int) -> None:
        self.code = code
        self.key_length = key_length
        self.hash_length = hash_length

    def encode(self) -> bytes:
        return self.code.to_bytes(2, "big")

    @property
    def finished_size(self) -> int:
        """Size of the Finished verify_data for this suite's hash."""
        return self.hash_length

    @classmethod
    def default_client_offer(cls) -> tuple["CipherSuite", ...]:
        return (
            cls.TLS_AES_128_GCM_SHA256,
            cls.TLS_AES_256_GCM_SHA384,
            cls.TLS_CHACHA20_POLY1305_SHA256,
        )
