"""Anti-amplification limits, browser Initial sizes, and the limit's history.

This module is the single source of truth for the constants the analyses use:
the RFC 9000 3× factor, the minimum Initial size, the Initial sizes and
certificate-compression support of popular browsers (the paper's Table 1), and
the evolution of the amplification mitigation across QUIC Internet drafts
(the paper's Table 3, Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..tls.cert_compression import CertificateCompressionAlgorithm

#: RFC 9000 §8.1: a server may send at most three times the bytes received
#: from an unvalidated address.
ANTI_AMPLIFICATION_FACTOR = 3

#: RFC 9000 §14.1: client Initial datagrams must be at least 1200 bytes.
MIN_INITIAL_SIZE = 1200

#: The maximum UDP payload the paper's vantage point could emit (MTU 1500,
#: minus IP and UDP headers); QUIC forbids fragmentation.
MAX_INITIAL_SIZE_AT_MTU_1500 = 1472


def amplification_limit(client_initial_size: int) -> int:
    """The number of bytes a server may send before validating the client."""
    if client_initial_size < 0:
        raise ValueError("client Initial size must be non-negative")
    return ANTI_AMPLIFICATION_FACTOR * client_initial_size


@dataclass(frozen=True)
class BrowserProfile:
    """One row of the paper's Table 1."""

    name: str
    version: str
    initial_size: Optional[int]
    compression_algorithms: Tuple[CertificateCompressionAlgorithm, ...]

    @property
    def supports_quic(self) -> bool:
        return self.initial_size is not None

    @property
    def amplification_limit(self) -> Optional[int]:
        if self.initial_size is None:
            return None
        return amplification_limit(self.initial_size)


BROWSER_PROFILES: Dict[str, BrowserProfile] = {
    "firefox": BrowserProfile(
        name="Firefox", version="101.x", initial_size=1357, compression_algorithms=()
    ),
    "chromium": BrowserProfile(
        name="Chromium-based",
        version="105.x",
        initial_size=1250,  # recently reduced from 1350
        compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
    ),
    "safari": BrowserProfile(
        name="Safari (macOS)",
        version="15.5",
        initial_size=None,  # no QUIC
        compression_algorithms=(
            CertificateCompressionAlgorithm.ZLIB,
            CertificateCompressionAlgorithm.ZSTD,
        ),
    ),
}

#: The two "common amplification limits" the paper refers to: 3× the Chromium
#: and 3× the Firefox Initial sizes.
COMMON_AMPLIFICATION_LIMITS: Tuple[int, ...] = (
    amplification_limit(1250),
    amplification_limit(1357),
)

#: The larger of the two, used as the Figure 6 threshold (3 × 1357 = 4071).
LARGER_COMMON_LIMIT = max(COMMON_AMPLIFICATION_LIMITS)


@dataclass(frozen=True)
class DraftLimit:
    """One row of the paper's Table 3: how a draft bounded amplification."""

    spec: str
    date: str
    rule: str
    byte_limited: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.spec} ({self.date}): {self.rule}"


AMPLIFICATION_LIMIT_HISTORY: Tuple[DraftLimit, ...] = (
    DraftLimit(
        spec="Draft 09",
        date="01/2018",
        rule=(
            "A server MAY send a CONNECTION_CLOSE frame with error code "
            "PROTOCOL_VIOLATION in response to an Initial packet smaller than 1200 octets."
        ),
        byte_limited=False,
    ),
    DraftLimit(
        spec="Draft 10 - 12",
        date="03/2018 - 05/2018",
        rule=(
            "Servers MUST NOT send more than three Handshake packets without "
            "receiving a packet from a verified source address."
        ),
        byte_limited=False,
    ),
    DraftLimit(
        spec="Draft 13 - 14",
        date="06/2018 - 08/2018",
        rule=(
            "Servers MUST NOT send more than three datagrams including Initial and "
            "Handshake packets without receiving a packet from a verified source address."
        ),
        byte_limited=False,
    ),
    DraftLimit(
        spec="Draft 15 - 32",
        date="10/2018 - 10/2020",
        rule=(
            "Servers MUST NOT send more than three times as many bytes as the number "
            "of bytes received prior to verifying the client's address."
        ),
        byte_limited=True,
    ),
    DraftLimit(
        spec="Draft 33 - 34, RFC 9000",
        date="12/2020 - 05/2021",
        rule=(
            "An endpoint MUST limit the amount of data it sends to the unvalidated "
            "address to three times the amount of data received from that address."
        ),
        byte_limited=True,
    ),
)
