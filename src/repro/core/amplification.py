"""Amplification-factor computation and aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .limits import ANTI_AMPLIFICATION_FACTOR


def amplification_factor(bytes_received_from_server: int, bytes_sent_by_client: int) -> float:
    """UDP payload bytes received divided by bytes sent (the paper's metric)."""
    if bytes_sent_by_client <= 0:
        raise ValueError("the client must have sent a positive number of bytes")
    if bytes_received_from_server < 0:
        raise ValueError("received bytes must be non-negative")
    return bytes_received_from_server / bytes_sent_by_client


def exceeds_limit(
    bytes_received_from_server: int,
    bytes_sent_by_client: int,
    factor: int = ANTI_AMPLIFICATION_FACTOR,
) -> bool:
    """Whether a server reply violates the anti-amplification limit."""
    return bytes_received_from_server > factor * bytes_sent_by_client


@dataclass(frozen=True)
class AmplificationReport:
    """Summary statistics over a set of amplification factors."""

    count: int
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float
    share_exceeding_limit: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "min": self.minimum,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.maximum,
            "share_exceeding_limit": self.share_exceeding_limit,
        }


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    index = min(int(round(fraction * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[index]


def summarize_amplification(
    factors: Iterable[float], limit_factor: float = float(ANTI_AMPLIFICATION_FACTOR)
) -> AmplificationReport:
    """Aggregate amplification factors into the summary the analyses report."""
    values: List[float] = sorted(float(f) for f in factors)
    if not values:
        return AmplificationReport(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    exceeding = sum(1 for value in values if value > limit_factor)
    return AmplificationReport(
        count=len(values),
        minimum=values[0],
        median=_percentile(values, 0.5),
        p90=_percentile(values, 0.9),
        p99=_percentile(values, 0.99),
        maximum=values[-1],
        share_exceeding_limit=exceeding / len(values),
    )
