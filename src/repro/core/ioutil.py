"""Atomic file writes shared by every artifact-producing layer.

Reports, per-figure CSVs, golden digests and shard checkpoints are all
consumed by tooling that diffs or hashes them byte-for-byte, so a partially
written file is worse than no file: a reader cannot tell a truncated artifact
from an intentionally short one.  Every writer therefore routes through the
same tmp-file + :func:`os.replace` pattern — the replace is atomic on POSIX
and Windows, so a crash (or an injected fault) at any instant leaves either
the complete previous file or the complete new one, never a torn write.
"""

from __future__ import annotations

import hashlib
import os
import tempfile


class SelfVerifyingFormatError(ValueError):
    """Bytes failed self-verifying header parsing (torn/corrupt/foreign file)."""


def encode_self_verifying(format_tag: bytes, payload: bytes) -> bytes:
    """Wrap ``payload`` in the shared ``<tag> <len> <sha256>\\n`` header.

    The header makes the file self-verifying: a reader can detect a stale
    format, a truncated write or a flipped bit without trusting anything but
    the bytes themselves.  Both on-disk stores (``scanners/checkpoint.py``,
    ``scanners/skeleton_store.py``) share this one layout and differ only in
    their ``format_tag`` magic string.
    """
    header = b"%s %d %s\n" % (
        format_tag,
        len(payload),
        hashlib.sha256(payload).hexdigest().encode("ascii"),
    )
    return header + payload


def decode_self_verifying(format_tag: bytes, data: bytes, label: str = "file") -> bytes:
    """Verify the self-verifying header and return the payload bytes.

    Raises :class:`SelfVerifyingFormatError` on any defect — missing or
    malformed header, unknown format version, length mismatch (truncation)
    or digest mismatch (corruption).  ``label`` names the artifact kind in
    error messages ("checkpoint", "skeleton shard", ...); callers typically
    wrap the error in their own store-specific exception and quarantine the
    file.
    """
    newline = data.find(b"\n")
    if newline < 0:
        raise SelfVerifyingFormatError(f"{label} has no header line")
    parts = data[:newline].split(b" ")
    if len(parts) != 3:
        raise SelfVerifyingFormatError(f"{label} header is malformed")
    if parts[0] != format_tag:
        raise SelfVerifyingFormatError(
            f"{label} format {parts[0].decode('ascii', 'replace')!r} is not "
            f"{format_tag.decode('ascii')!r}"
        )
    try:
        length = int(parts[1])
    except ValueError as error:
        raise SelfVerifyingFormatError(
            f"{label} header length is not an integer"
        ) from error
    payload = data[newline + 1 :]
    if len(payload) != length:
        raise SelfVerifyingFormatError(
            f"{label} payload is {len(payload)} bytes, header promises {length} "
            "(truncated write?)"
        )
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    if digest != parts[2]:
        raise SelfVerifyingFormatError(f"{label} payload digest mismatch (corrupt file)")
    return payload


def quarantine_file(path: str, quarantine_directory: str) -> str:
    """Move a failed-verification file into quarantine (kept, never trusted).

    The file is preserved as evidence rather than deleted; name collisions in
    the quarantine directory get a ``.N`` counter suffix so repeated failures
    never overwrite each other.  Returns the destination path.
    """
    os.makedirs(quarantine_directory, exist_ok=True)
    base = os.path.basename(path)
    destination = os.path.join(quarantine_directory, base)
    counter = 0
    while os.path.exists(destination):
        counter += 1
        destination = os.path.join(quarantine_directory, f"{base}.{counter}")
    os.replace(path, destination)
    return destination


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    replace never crosses a filesystem boundary (rename atomicity only holds
    within one filesystem).  On any failure the temporary file is removed and
    the destination is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))
