"""Atomic file writes shared by every artifact-producing layer.

Reports, per-figure CSVs, golden digests and shard checkpoints are all
consumed by tooling that diffs or hashes them byte-for-byte, so a partially
written file is worse than no file: a reader cannot tell a truncated artifact
from an intentionally short one.  Every writer therefore routes through the
same tmp-file + :func:`os.replace` pattern — the replace is atomic on POSIX
and Windows, so a crash (or an injected fault) at any instant leaves either
the complete previous file or the complete new one, never a torn write.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    replace never crosses a filesystem boundary (rename atomicity only holds
    within one filesystem).  On any failure the temporary file is removed and
    the destination is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically write ``text`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))
