"""The synthetic certificate-compression study of §4.2 ("Compression helps").

The paper compresses every collected certificate chain and reports (i) the
median compression rate (≈65 %) and (ii) the share of chains whose compressed
size stays below the common anti-amplification limit (≈99 %), which would turn
multi-RTT handshakes back into 1-RTT handshakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..tls.cert_compression import (
    CertificateCompressionAlgorithm,
    CompressionResult,
    compress_certificate_chain,
)
from ..x509.chain import CertificateChain
from .limits import LARGER_COMMON_LIMIT


@dataclass(frozen=True)
class CompressionStudyResult:
    """Aggregate outcome of compressing a set of chains with one algorithm."""

    algorithm: CertificateCompressionAlgorithm
    chain_count: int
    median_compression_rate: float
    mean_compression_rate: float
    share_below_limit_uncompressed: float
    share_below_limit_compressed: float
    limit_bytes: int

    @property
    def share_rescued(self) -> float:
        """Chains that only fit under the limit thanks to compression."""
        return self.share_below_limit_compressed - self.share_below_limit_uncompressed

    def as_dict(self) -> Dict[str, float]:
        return {
            "algorithm": self.algorithm.label,
            "chains": self.chain_count,
            "median_rate": self.median_compression_rate,
            "mean_rate": self.mean_compression_rate,
            "below_limit_uncompressed": self.share_below_limit_uncompressed,
            "below_limit_compressed": self.share_below_limit_compressed,
            "limit_bytes": self.limit_bytes,
        }


def _median(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


def run_compression_study(
    chains: Iterable[CertificateChain],
    algorithm: CertificateCompressionAlgorithm = CertificateCompressionAlgorithm.BROTLI,
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> CompressionStudyResult:
    """Compress every chain and summarise rates and limit compliance."""
    rates: List[float] = []
    below_uncompressed = 0
    below_compressed = 0
    count = 0
    for chain in chains:
        result: CompressionResult = compress_certificate_chain(
            [cert.der for cert in chain], algorithm
        )
        rates.append(result.ratio)
        count += 1
        if result.uncompressed_size <= limit_bytes:
            below_uncompressed += 1
        if result.compressed_size <= limit_bytes:
            below_compressed += 1
    if count == 0:
        return CompressionStudyResult(algorithm, 0, 0.0, 0.0, 0.0, 0.0, limit_bytes)
    return CompressionStudyResult(
        algorithm=algorithm,
        chain_count=count,
        median_compression_rate=_median(rates),
        mean_compression_rate=sum(rates) / count,
        share_below_limit_uncompressed=below_uncompressed / count,
        share_below_limit_compressed=below_compressed / count,
        limit_bytes=limit_bytes,
    )


def run_all_algorithms(
    chains: Sequence[CertificateChain],
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> Dict[CertificateCompressionAlgorithm, CompressionStudyResult]:
    """Run the study once per RFC 8879 algorithm (the Table 1 "Rate" column)."""
    return {
        algorithm: run_compression_study(chains, algorithm, limit_bytes)
        for algorithm in CertificateCompressionAlgorithm
    }


def study_from_reduction(
    algorithm: CertificateCompressionAlgorithm,
    rates: Sequence[float],
    below_limit_uncompressed: int,
    below_limit_compressed: int,
    chain_count: int,
    limit_bytes: int = LARGER_COMMON_LIMIT,
) -> CompressionStudyResult:
    """Rebuild the study summary from streamed per-chain reductions.

    ``rates`` must be in chain (= shard concatenation) order so the mean is
    the identical left-to-right float sum of :func:`run_compression_study`.
    """
    if chain_count == 0:
        return CompressionStudyResult(algorithm, 0, 0.0, 0.0, 0.0, 0.0, limit_bytes)
    ordered_rates = list(rates)
    return CompressionStudyResult(
        algorithm=algorithm,
        chain_count=chain_count,
        median_compression_rate=_median(ordered_rates),
        mean_compression_rate=sum(ordered_rates) / chain_count,
        share_below_limit_uncompressed=below_limit_uncompressed / chain_count,
        share_below_limit_compressed=below_limit_compressed / chain_count,
        limit_bytes=limit_bytes,
    )
