"""The paper's primary contribution as a reusable library API.

``repro.core`` exposes the concepts a downstream user needs without touching
the substrates directly:

* the anti-amplification limit, browser Initial sizes, and the history of the
  limit across QUIC drafts (:mod:`repro.core.limits`),
* handshake classification and amplification-factor computation
  (:mod:`repro.core.classification`, :mod:`repro.core.amplification`),
* prediction of the handshake outcome from a certificate chain and a client
  Initial size *without* running a handshake — the interplay model the paper
  derives (:mod:`repro.core.interplay`),
* the synthetic certificate-compression study of §4.2
  (:mod:`repro.core.compression_study`),
* the §5 guidance, including the client-side Initial-size adaptation cache
  (:mod:`repro.core.guidance`).
"""

from .limits import (
    ANTI_AMPLIFICATION_FACTOR,
    MIN_INITIAL_SIZE,
    BrowserProfile,
    BROWSER_PROFILES,
    AMPLIFICATION_LIMIT_HISTORY,
    DraftLimit,
    amplification_limit,
)
from .classification import HandshakeClass, classify_flight, classify_outcome
from .amplification import (
    amplification_factor,
    exceeds_limit,
    AmplificationReport,
    summarize_amplification,
)
from .interplay import (
    HandshakePrediction,
    predict_handshake,
    required_initial_size,
    server_flight_size,
)
from .compression_study import CompressionStudyResult, run_compression_study
from .guidance import (
    InitialSizeCache,
    CacheEntry,
    StakeholderGuidance,
    derive_guidance,
)

__all__ = [
    "ANTI_AMPLIFICATION_FACTOR",
    "MIN_INITIAL_SIZE",
    "BrowserProfile",
    "BROWSER_PROFILES",
    "AMPLIFICATION_LIMIT_HISTORY",
    "DraftLimit",
    "amplification_limit",
    "HandshakeClass",
    "classify_flight",
    "classify_outcome",
    "amplification_factor",
    "exceeds_limit",
    "AmplificationReport",
    "summarize_amplification",
    "HandshakePrediction",
    "predict_handshake",
    "required_initial_size",
    "server_flight_size",
    "CompressionStudyResult",
    "run_compression_study",
    "InitialSizeCache",
    "CacheEntry",
    "StakeholderGuidance",
    "derive_guidance",
]
