"""Handshake classification helpers (re-exported from the QUIC substrate).

The classification semantics live next to the handshake engine in
:mod:`repro.quic.handshake`; this module provides the stable public names and
light wrappers that work on plain numbers, so analysis code and downstream
users can classify observations that did not come from our own simulator
(for example replayed pcap summaries).
"""

from __future__ import annotations

from ..quic.handshake import HandshakeClass, HandshakeOutcome, HandshakeTrace, classify
from .limits import ANTI_AMPLIFICATION_FACTOR

__all__ = ["HandshakeClass", "classify_outcome", "classify_flight"]


def classify_outcome(trace: HandshakeTrace) -> HandshakeClass:
    """Classify a simulated handshake trace (same rules as the scanners)."""
    return classify(trace)


def classify_flight(
    client_initial_size: int,
    server_first_rtt_bytes: int,
    required_round_trips: int,
    used_retry: bool,
) -> HandshakeClass:
    """Classify a handshake from externally observed quantities.

    ``required_round_trips`` counts the round trips needed before the
    handshake can complete (1 for an immediate completion).  The precedence
    mirrors §3.2 of the paper: Retry first, then Multi-RTT, then the
    amplification check, and 1-RTT otherwise.
    """
    if client_initial_size <= 0:
        raise ValueError("client Initial size must be positive")
    if required_round_trips < 1:
        raise ValueError("a handshake needs at least one round trip")
    if used_retry:
        return HandshakeClass.RETRY
    if required_round_trips > 1:
        return HandshakeClass.MULTI_RTT
    if server_first_rtt_bytes > ANTI_AMPLIFICATION_FACTOR * client_initial_size:
        return HandshakeClass.AMPLIFICATION
    return HandshakeClass.ONE_RTT
