"""The certificate ↔ handshake interplay model.

The paper's central observation is that, for compliant servers, the handshake
outcome is determined by simple arithmetic: the server's first flight (mainly
the certificate chain) either fits into 3× the client Initial or it does not.
This module turns that arithmetic into a reusable prediction API:

* :func:`server_flight_size` estimates the TLS first-flight size for a chain,
* :func:`predict_handshake` predicts the handshake class without running the
  full simulator,
* :func:`required_initial_size` computes the smallest client Initial that
  achieves a 1-RTT handshake for a given chain — the quantity a client-side
  cache (§5 guidance) would store per server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..quic.packet import AEAD_TAG_SIZE, MIN_CLIENT_INITIAL_SIZE
from ..tls.cert_compression import CertificateCompressionAlgorithm, compress_certificate_chain
from ..tls.handshake_messages import build_server_first_flight, ClientHello
from ..x509.chain import CertificateChain
from .classification import HandshakeClass
from .limits import ANTI_AMPLIFICATION_FACTOR, MAX_INITIAL_SIZE_AT_MTU_1500, MIN_INITIAL_SIZE

#: Per-packet QUIC overhead (long header ≈ 26–40 bytes plus the AEAD tag).
_PER_PACKET_OVERHEAD = 40 + AEAD_TAG_SIZE
#: Typical number of packets a coalescing server needs for its first flight.
_TYPICAL_FIRST_FLIGHT_PACKETS = 3


@dataclass(frozen=True)
class HandshakePrediction:
    """Prediction of the handshake outcome for one (chain, Initial size) pair."""

    chain_size: int
    tls_flight_size: int
    estimated_first_flight_bytes: int
    client_initial_size: int
    amplification_budget: int
    predicted_class: HandshakeClass
    compression: Optional[CertificateCompressionAlgorithm] = None

    @property
    def fits_in_one_rtt(self) -> bool:
        return self.predicted_class is HandshakeClass.ONE_RTT

    @property
    def headroom_bytes(self) -> int:
        """How many bytes of budget remain (negative when the flight overflows)."""
        return self.amplification_budget - self.estimated_first_flight_bytes


def server_flight_size(
    chain: CertificateChain,
    compression: Optional[CertificateCompressionAlgorithm] = None,
) -> int:
    """TLS bytes of the server's first flight for ``chain``.

    With ``compression`` set, the Certificate message is replaced by the
    RFC 8879 CompressedCertificate equivalent.
    """
    client_hello = ClientHello(
        server_name=chain.leaf.subject_common_name or "example.org",
        compression_algorithms=(compression,) if compression else (),
    )
    flight = build_server_first_flight(
        chain,
        client_hello,
        server_compression_algorithms=(compression,) if compression else (),
    )
    return flight.total_crypto_size


def _estimated_wire_bytes(tls_flight_size: int) -> int:
    """TLS flight plus QUIC packetisation overhead for a coalescing server."""
    packets = max(_TYPICAL_FIRST_FLIGHT_PACKETS, math.ceil(tls_flight_size / 1400))
    return tls_flight_size + packets * _PER_PACKET_OVERHEAD


def predict_handshake(
    chain: CertificateChain,
    client_initial_size: int,
    compression: Optional[CertificateCompressionAlgorithm] = None,
    server_is_compliant: bool = True,
) -> HandshakePrediction:
    """Predict the handshake class from the chain and the client Initial size.

    A compliant server defers data beyond the budget (Multi-RTT); a
    non-compliant one sends everything (Amplification when it overflows).
    """
    if client_initial_size < MIN_INITIAL_SIZE:
        raise ValueError(f"client Initials must be at least {MIN_INITIAL_SIZE} bytes")
    tls_flight = server_flight_size(chain, compression)
    wire_bytes = _estimated_wire_bytes(tls_flight)
    budget = ANTI_AMPLIFICATION_FACTOR * client_initial_size
    if wire_bytes <= budget:
        predicted = HandshakeClass.ONE_RTT
    elif server_is_compliant:
        predicted = HandshakeClass.MULTI_RTT
    else:
        predicted = HandshakeClass.AMPLIFICATION
    return HandshakePrediction(
        chain_size=chain.total_size,
        tls_flight_size=tls_flight,
        estimated_first_flight_bytes=wire_bytes,
        client_initial_size=client_initial_size,
        amplification_budget=budget,
        predicted_class=predicted,
        compression=compression,
    )


def required_initial_size(
    chain: CertificateChain,
    compression: Optional[CertificateCompressionAlgorithm] = None,
    mtu_limit: int = MAX_INITIAL_SIZE_AT_MTU_1500,
) -> Optional[int]:
    """Smallest client Initial size that yields a 1-RTT handshake, if any.

    Returns ``None`` when even an MTU-sized Initial cannot accommodate the
    server's flight — the case where only certificate changes or compression
    can restore 1-RTT handshakes.
    """
    wire_bytes = _estimated_wire_bytes(server_flight_size(chain, compression))
    needed = math.ceil(wire_bytes / ANTI_AMPLIFICATION_FACTOR)
    needed = max(needed, MIN_INITIAL_SIZE)
    if needed > mtu_limit:
        return None
    return needed
