"""The §5 guidance, as executable policy.

Three pieces of the paper's discussion are turned into code:

* :class:`InitialSizeCache` — the client-side mitigation the paper proposes:
  remember, per server, how large the server's first flight was, and size the
  next Initial so the flight fits within 3× of it (low latency without
  certificate compression).
* :func:`derive_guidance` — turns measurement results into the stakeholder
  recommendations of §5 (protocol, server implementations, CAs), with the
  supporting numbers attached so reports can cite them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..x509.chain import CertificateChain
from .classification import HandshakeClass
from .interplay import required_initial_size
from .limits import ANTI_AMPLIFICATION_FACTOR, MAX_INITIAL_SIZE_AT_MTU_1500, MIN_INITIAL_SIZE


@dataclass
class CacheEntry:
    """Per-server knowledge a client accumulates."""

    server_name: str
    observed_first_flight_bytes: int
    achieved_one_rtt: bool
    suggested_initial_size: int


class InitialSizeCache:
    """Client-side cache of server flight sizes (the §5 client mitigation)."""

    def __init__(
        self,
        default_initial_size: int = 1250,
        mtu_limit: int = MAX_INITIAL_SIZE_AT_MTU_1500,
    ) -> None:
        if default_initial_size < MIN_INITIAL_SIZE:
            raise ValueError("the default Initial size must satisfy the RFC 9000 minimum")
        self._default = default_initial_size
        self._mtu_limit = mtu_limit
        self._entries: Dict[str, CacheEntry] = {}

    # -- use ---------------------------------------------------------------------

    def initial_size_for(self, server_name: str) -> int:
        """The Initial size to use for the next connection to ``server_name``."""
        entry = self._entries.get(server_name.lower())
        if entry is None:
            return self._default
        return entry.suggested_initial_size

    def record_handshake(
        self,
        server_name: str,
        server_first_flight_bytes: int,
        achieved_one_rtt: bool,
    ) -> CacheEntry:
        """Update the cache after a handshake with what the server needed."""
        if server_first_flight_bytes < 0:
            raise ValueError("flight size must be non-negative")
        needed = max(
            MIN_INITIAL_SIZE,
            -(-server_first_flight_bytes // ANTI_AMPLIFICATION_FACTOR),  # ceil division
        )
        suggested = min(max(needed, self._default), self._mtu_limit)
        entry = CacheEntry(
            server_name=server_name.lower(),
            observed_first_flight_bytes=server_first_flight_bytes,
            achieved_one_rtt=achieved_one_rtt,
            suggested_initial_size=suggested,
        )
        self._entries[entry.server_name] = entry
        return entry

    def record_chain(self, server_name: str, chain: CertificateChain) -> CacheEntry:
        """Seed the cache from a known certificate chain (e.g. an HTTPS visit)."""
        needed = required_initial_size(chain)
        achieved = needed is not None
        flight_estimate = chain.total_size + 700
        entry = CacheEntry(
            server_name=server_name.lower(),
            observed_first_flight_bytes=flight_estimate,
            achieved_one_rtt=achieved,
            suggested_initial_size=min(needed or self._mtu_limit, self._mtu_limit),
        )
        self._entries[entry.server_name] = entry
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, server_name: str) -> bool:
        return server_name.lower() in self._entries


@dataclass(frozen=True)
class StakeholderGuidance:
    """One recommendation with the measurement numbers that justify it."""

    audience: str
    recommendation: str
    supporting_metric: str
    value: float


def derive_guidance(
    class_shares: Dict[HandshakeClass, float],
    median_compression_rate: float,
    share_compressed_below_limit: float,
    share_quic_leaf_ecdsa: float,
) -> List[StakeholderGuidance]:
    """Produce the §5 recommendations from the measured quantities."""
    guidance: List[StakeholderGuidance] = []
    amplification_share = class_shares.get(HandshakeClass.AMPLIFICATION, 0.0)
    multi_rtt_share = class_shares.get(HandshakeClass.MULTI_RTT, 0.0)
    one_rtt_share = class_shares.get(HandshakeClass.ONE_RTT, 0.0)

    guidance.append(
        StakeholderGuidance(
            audience="IETF / protocol",
            recommendation=(
                "Keep the 3x anti-amplification limit: it is tight but large enough for "
                "1-RTT handshakes with small certificate chains and compression; focus on "
                "loss handling during the handshake instead of raising the limit."
            ),
            supporting_metric="share of handshakes achieving 1-RTT today",
            value=one_rtt_share,
        )
    )
    guidance.append(
        StakeholderGuidance(
            audience="server implementations",
            recommendation=(
                "Count padding and retransmitted bytes against the limit, enable packet "
                "coalescence, and integrate a TLS library with RFC 8879 support."
            ),
            supporting_metric="share of handshakes exceeding the limit (non-compliant)",
            value=amplification_share,
        )
    )
    guidance.append(
        StakeholderGuidance(
            audience="certificate authorities",
            recommendation=(
                "Issue ECDSA chains end to end and retire RSA-only roots so smaller chains "
                "can unfold their latency benefit."
            ),
            supporting_metric="share of QUIC leaf certificates already using ECDSA",
            value=share_quic_leaf_ecdsa,
        )
    )
    guidance.append(
        StakeholderGuidance(
            audience="operators / clients",
            recommendation=(
                "Deploy certificate compression (or client-side Initial sizing caches) to "
                "avoid multi-RTT handshakes caused by large chains."
            ),
            supporting_metric="share of chains fitting the limit once compressed",
            value=share_compressed_below_limit,
        )
    )
    guidance.append(
        StakeholderGuidance(
            audience="operators / clients",
            recommendation=(
                "Trim chains: drop superfluous roots and cross-signed variants already in "
                "client trust stores; this alone moves many deployments back to 1-RTT."
            ),
            supporting_metric="share of handshakes needing extra round trips today",
            value=multi_rtt_share,
        )
    )
    guidance.append(
        StakeholderGuidance(
            audience="TLS library maintainers",
            recommendation=(
                "Ship RFC 8879 certificate compression; its median rate keeps almost every "
                "chain below the amplification limit."
            ),
            supporting_metric="median certificate-chain compression rate",
            value=median_compression_rate,
        )
    )
    return guidance
