"""Minimal ASN.1 DER encoder/decoder.

This subpackage implements the subset of DER (Distinguished Encoding Rules,
ITU-T X.690) needed to build and size real X.509 v3 certificates:

* tag/length/value framing with definite lengths,
* the universal types used by RFC 5280 (BOOLEAN, INTEGER, BIT STRING,
  OCTET STRING, NULL, OBJECT IDENTIFIER, UTF8String, PrintableString,
  IA5String, UTCTime, GeneralizedTime, SEQUENCE, SET),
* explicit context-specific tagging as used by ``TBSCertificate``.

The reproduction uses this to *actually encode* certificates so that every
certificate size reported by the analysis is the size of real DER bytes, not a
guess.  A small decoder is provided as well so tests can round-trip structures
and scanners can re-parse what servers deliver.
"""

from .der import (
    Asn1Error,
    encode_tlv,
    encode_length,
    decode_length,
    encode_boolean,
    decode_boolean,
    encode_integer,
    decode_integer,
    encode_bit_string,
    decode_bit_string,
    encode_octet_string,
    encode_null,
    encode_utf8_string,
    encode_printable_string,
    encode_ia5_string,
    encode_utc_time,
    encode_generalized_time,
    encode_sequence,
    encode_set,
    encode_explicit,
    decode_tlv,
    iter_tlvs,
)
from .oid import ObjectIdentifier, OID, encode_oid, decode_oid
from .tags import Tag

__all__ = [
    "Asn1Error",
    "Tag",
    "ObjectIdentifier",
    "OID",
    "encode_oid",
    "decode_oid",
    "encode_tlv",
    "encode_length",
    "decode_length",
    "encode_boolean",
    "decode_boolean",
    "encode_integer",
    "decode_integer",
    "encode_bit_string",
    "decode_bit_string",
    "encode_octet_string",
    "encode_null",
    "encode_utf8_string",
    "encode_printable_string",
    "encode_ia5_string",
    "encode_utc_time",
    "encode_generalized_time",
    "encode_sequence",
    "encode_set",
    "encode_explicit",
    "decode_tlv",
    "iter_tlvs",
]
