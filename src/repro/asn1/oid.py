"""Object identifiers used across X.509, TLS signature algorithms and PKIX."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .der import Asn1Error, encode_tlv
from .tags import Tag


@dataclass(frozen=True)
class ObjectIdentifier:
    """An OID with a human-readable name for reporting."""

    dotted: str
    name: str = ""

    @property
    def arcs(self) -> Tuple[int, ...]:
        return tuple(int(part) for part in self.dotted.split("."))

    def encode(self) -> bytes:
        # Memoized on the frozen instance: the OID registry is a fixed set of
        # objects that leaf issuance encodes millions of times per campaign.
        encoded = getattr(self, "_encoded", None)
        if encoded is None:
            encoded = encode_oid(self.dotted)
            object.__setattr__(self, "_encoded", encoded)
        return encoded

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or self.dotted


def encode_oid(dotted: str) -> bytes:
    """Encode a dotted OID string as a DER OBJECT IDENTIFIER."""
    arcs = [int(part) for part in dotted.split(".") if part != ""]
    if len(arcs) < 2:
        raise Asn1Error(f"OID needs at least two arcs: {dotted!r}")
    if arcs[0] > 2 or (arcs[0] < 2 and arcs[1] > 39):
        raise Asn1Error(f"invalid OID root arcs: {dotted!r}")
    body = bytearray([arcs[0] * 40 + arcs[1]])
    for arc in arcs[2:]:
        body.extend(_encode_base128(arc))
    return encode_tlv(Tag.OBJECT_IDENTIFIER, bytes(body))


def decode_oid(content: bytes) -> str:
    """Decode the content octets of an OBJECT IDENTIFIER to dotted form."""
    if not content:
        raise Asn1Error("empty OID content")
    first = content[0]
    arcs = [first // 40 if first < 80 else 2, first % 40 if first < 80 else first - 80]
    value = 0
    in_progress = False
    for octet in content[1:]:
        value = (value << 7) | (octet & 0x7F)
        in_progress = bool(octet & 0x80)
        if not in_progress:
            arcs.append(value)
            value = 0
    if in_progress:
        raise Asn1Error("truncated OID arc")
    return ".".join(str(a) for a in arcs)


def _encode_base128(value: int) -> bytes:
    if value < 0:
        raise Asn1Error("OID arcs must be non-negative")
    chunks = [value & 0x7F]
    value >>= 7
    while value:
        chunks.append((value & 0x7F) | 0x80)
        value >>= 7
    chunks.reverse()
    return bytes(chunks)


class OID:
    """Registry of the OIDs this project uses."""

    # Name attribute types
    COMMON_NAME = ObjectIdentifier("2.5.4.3", "commonName")
    COUNTRY = ObjectIdentifier("2.5.4.6", "countryName")
    LOCALITY = ObjectIdentifier("2.5.4.7", "localityName")
    STATE = ObjectIdentifier("2.5.4.8", "stateOrProvinceName")
    ORGANIZATION = ObjectIdentifier("2.5.4.10", "organizationName")
    ORG_UNIT = ObjectIdentifier("2.5.4.11", "organizationalUnitName")

    # Public key algorithms
    RSA_ENCRYPTION = ObjectIdentifier("1.2.840.113549.1.1.1", "rsaEncryption")
    EC_PUBLIC_KEY = ObjectIdentifier("1.2.840.10045.2.1", "id-ecPublicKey")
    CURVE_P256 = ObjectIdentifier("1.2.840.10045.3.1.7", "prime256v1")
    CURVE_P384 = ObjectIdentifier("1.3.132.0.34", "secp384r1")

    # Signature algorithms
    SHA256_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.11", "sha256WithRSAEncryption")
    SHA384_WITH_RSA = ObjectIdentifier("1.2.840.113549.1.1.12", "sha384WithRSAEncryption")
    ECDSA_WITH_SHA256 = ObjectIdentifier("1.2.840.10045.4.3.2", "ecdsa-with-SHA256")
    ECDSA_WITH_SHA384 = ObjectIdentifier("1.2.840.10045.4.3.3", "ecdsa-with-SHA384")

    # Extensions
    SUBJECT_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.14", "subjectKeyIdentifier")
    KEY_USAGE = ObjectIdentifier("2.5.29.15", "keyUsage")
    SUBJECT_ALT_NAME = ObjectIdentifier("2.5.29.17", "subjectAltName")
    BASIC_CONSTRAINTS = ObjectIdentifier("2.5.29.19", "basicConstraints")
    CRL_DISTRIBUTION_POINTS = ObjectIdentifier("2.5.29.31", "cRLDistributionPoints")
    CERTIFICATE_POLICIES = ObjectIdentifier("2.5.29.32", "certificatePolicies")
    AUTHORITY_KEY_IDENTIFIER = ObjectIdentifier("2.5.29.35", "authorityKeyIdentifier")
    EXTENDED_KEY_USAGE = ObjectIdentifier("2.5.29.37", "extKeyUsage")
    AUTHORITY_INFO_ACCESS = ObjectIdentifier("1.3.6.1.5.5.7.1.1", "authorityInfoAccess")
    SCT_LIST = ObjectIdentifier("1.3.6.1.4.1.11129.2.4.2", "signedCertificateTimestampList")

    # Extended key usage purposes
    SERVER_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.1", "serverAuth")
    CLIENT_AUTH = ObjectIdentifier("1.3.6.1.5.5.7.3.2", "clientAuth")

    # Access methods
    OCSP = ObjectIdentifier("1.3.6.1.5.5.7.48.1", "ocsp")
    CA_ISSUERS = ObjectIdentifier("1.3.6.1.5.5.7.48.2", "caIssuers")

    # Policy identifiers
    DOMAIN_VALIDATED = ObjectIdentifier("2.23.140.1.2.1", "domain-validated")
    ORGANIZATION_VALIDATED = ObjectIdentifier("2.23.140.1.2.2", "organization-validated")
