"""DER primitive encoding and decoding (ITU-T X.690 subset).

Only definite-length encodings are produced and accepted, which is exactly what
DER requires.  The encoder favours explicitness over speed: every helper takes
and returns ``bytes`` so composite structures are built by simple concatenation
in the X.509 layer.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Iterator, Tuple

from .tags import Tag


class Asn1Error(ValueError):
    """Raised when DER bytes are malformed or a value cannot be encoded."""


# ---------------------------------------------------------------------------
# Length octets
# ---------------------------------------------------------------------------

def encode_length(length: int) -> bytes:
    """Encode a definite length in the short or long form."""
    if length < 0:
        raise Asn1Error(f"negative length: {length}")
    if length < 0x80:
        return bytes([length])
    out = []
    value = length
    while value > 0:
        out.append(value & 0xFF)
        value >>= 8
    out.reverse()
    return bytes([0x80 | len(out)]) + bytes(out)


def decode_length(data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a definite length, returning ``(length, next_offset)``."""
    if offset >= len(data):
        raise Asn1Error("truncated length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    num_octets = first & 0x7F
    if num_octets == 0:
        raise Asn1Error("indefinite lengths are not allowed in DER")
    if offset + num_octets > len(data):
        raise Asn1Error("truncated long-form length")
    length = 0
    for i in range(num_octets):
        length = (length << 8) | data[offset + i]
    return length, offset + num_octets


# ---------------------------------------------------------------------------
# Generic TLV
# ---------------------------------------------------------------------------

def encode_tlv(tag: int, content: bytes) -> bytes:
    """Encode one tag-length-value triple."""
    return bytes([tag]) + encode_length(len(content)) + content


def decode_tlv(data: bytes, offset: int = 0) -> Tuple[int, bytes, int]:
    """Decode one TLV, returning ``(tag, content, next_offset)``."""
    if offset >= len(data):
        raise Asn1Error("truncated TLV: no tag")
    tag = data[offset]
    length, content_start = decode_length(data, offset + 1)
    content_end = content_start + length
    if content_end > len(data):
        raise Asn1Error("truncated TLV: content shorter than length")
    return tag, data[content_start:content_end], content_end


def iter_tlvs(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Iterate over the TLVs that make up a constructed value's content."""
    offset = 0
    while offset < len(data):
        tag, content, offset = decode_tlv(data, offset)
        yield tag, content


# ---------------------------------------------------------------------------
# Primitive types
# ---------------------------------------------------------------------------

def encode_boolean(value: bool) -> bytes:
    return encode_tlv(Tag.BOOLEAN, b"\xff" if value else b"\x00")


def decode_boolean(content: bytes) -> bool:
    if len(content) != 1:
        raise Asn1Error("BOOLEAN content must be a single octet")
    # DER (X.690 §11.1) allows exactly 0x00 for FALSE and 0xFF for TRUE; the
    # BER laxity of "any nonzero octet is TRUE" must be rejected.
    if content == b"\x00":
        return False
    if content == b"\xff":
        return True
    raise Asn1Error(f"BOOLEAN content must be 0x00 or 0xFF, got 0x{content[0]:02x}")


def encode_integer(value: int) -> bytes:
    """Encode a (possibly large) signed integer.

    Certificate serial numbers and RSA moduli are encoded through this path,
    so the minimal-octets rule matters for getting sizes right.
    """
    # ``int.to_bytes(..., signed=True)`` at the minimal byte count is already
    # the canonical two's-complement encoding.  A value needs one byte per 8
    # magnitude bits plus room for the sign bit; negative values gain that room
    # at -(2^(8n-1)), hence the -value-1 bit length.
    if value >= 0:
        num_bytes = value.bit_length() // 8 + 1
    else:
        num_bytes = (-value - 1).bit_length() // 8 + 1
    return encode_tlv(Tag.INTEGER, value.to_bytes(num_bytes, "big", signed=True))


def decode_integer(content: bytes) -> int:
    if not content:
        raise Asn1Error("INTEGER content must not be empty")
    return int.from_bytes(content, "big", signed=True)


def encode_bit_string(data: bytes, unused_bits: int = 0) -> bytes:
    if not 0 <= unused_bits <= 7:
        raise Asn1Error(f"unused_bits out of range: {unused_bits}")
    return encode_tlv(Tag.BIT_STRING, bytes([unused_bits]) + data)


def decode_bit_string(content: bytes) -> Tuple[bytes, int]:
    if not content:
        raise Asn1Error("BIT STRING content must not be empty")
    unused = content[0]
    if unused > 7:
        raise Asn1Error(f"invalid unused-bit count: {unused}")
    return content[1:], unused


def encode_octet_string(data: bytes) -> bytes:
    return encode_tlv(Tag.OCTET_STRING, data)


def encode_null() -> bytes:
    return encode_tlv(Tag.NULL, b"")


def encode_utf8_string(text: str) -> bytes:
    return encode_tlv(Tag.UTF8_STRING, text.encode("utf-8"))


def encode_printable_string(text: str) -> bytes:
    return encode_tlv(Tag.PRINTABLE_STRING, text.encode("ascii"))


def encode_ia5_string(text: str) -> bytes:
    return encode_tlv(Tag.IA5_STRING, text.encode("ascii"))


def encode_utc_time(moment: datetime) -> bytes:
    """Encode a UTCTime (used for validity dates before 2050)."""
    moment = moment.astimezone(timezone.utc)
    return encode_tlv(Tag.UTC_TIME, moment.strftime("%y%m%d%H%M%SZ").encode("ascii"))


def encode_generalized_time(moment: datetime) -> bytes:
    moment = moment.astimezone(timezone.utc)
    return encode_tlv(
        Tag.GENERALIZED_TIME, moment.strftime("%Y%m%d%H%M%SZ").encode("ascii")
    )


# ---------------------------------------------------------------------------
# Constructed types
# ---------------------------------------------------------------------------

def encode_sequence(*components: bytes) -> bytes:
    return encode_tlv(Tag.SEQUENCE, b"".join(components))


def encode_set(*components: bytes) -> bytes:
    # DER requires SET OF elements to be sorted by their encoding.
    return encode_tlv(Tag.SET, b"".join(sorted(components)))


def encode_explicit(tag_number: int, inner: bytes) -> bytes:
    """Wrap an encoding in an explicit context-specific constructed tag."""
    return encode_tlv(Tag.context(tag_number, constructed=True), inner)
