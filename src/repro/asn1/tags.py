"""ASN.1 universal tag numbers used by RFC 5280 structures."""

from enum import IntEnum


class Tag(IntEnum):
    """Universal class tag numbers (X.680) relevant to X.509."""

    BOOLEAN = 0x01
    INTEGER = 0x02
    BIT_STRING = 0x03
    OCTET_STRING = 0x04
    NULL = 0x05
    OBJECT_IDENTIFIER = 0x06
    UTF8_STRING = 0x0C
    PRINTABLE_STRING = 0x13
    IA5_STRING = 0x16
    UTC_TIME = 0x17
    GENERALIZED_TIME = 0x18
    SEQUENCE = 0x30  # constructed bit already set
    SET = 0x31  # constructed bit already set

    @staticmethod
    def context(number: int, constructed: bool = True) -> int:
        """Return the identifier octet for a context-specific tag.

        ``[number]`` tags are used by ``TBSCertificate`` for the version field
        and by extensions such as GeneralName.
        """
        if not 0 <= number <= 30:
            raise ValueError(f"context tag number out of single-octet range: {number}")
        base = 0x80 | number
        if constructed:
            base |= 0x20
        return base


CONSTRUCTED_BIT = 0x20
CONTEXT_CLASS = 0x80
