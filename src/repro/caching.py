"""Lock-free per-instance property caching.

``functools.cached_property`` on Python 3.11 serialises every first access
through an ``RLock`` that was removed upstream in 3.12 (bpo-43468): the lock
protects nothing useful — each instance computes its own value, and the
pipeline's parallelism is process-based, not thread-based.  The wire and
chain models create hundreds of thousands of small immutable objects per
campaign whose sizes are computed exactly once each, so the per-miss lock is
pure overhead on the hot path.

This drop-in equivalent keeps 3.12 semantics: compute on first access, store
in the instance ``__dict__`` (works on frozen dataclasses — the write
bypasses ``__setattr__``), and let every later access hit the instance
attribute directly without re-entering the descriptor.
"""

from __future__ import annotations

_NOT_FOUND = object()


class cached_property:  # noqa: N801 — mirrors the stdlib descriptor's name
    """``functools.cached_property`` without the 3.11 per-miss lock."""

    def __init__(self, func):
        self.func = func
        self.attrname = None
        self.__doc__ = func.__doc__

    def __set_name__(self, owner, name):
        if self.attrname is None:
            self.attrname = name
        elif name != self.attrname:
            raise TypeError(
                "cannot assign the same cached_property to two different "
                f"names ({self.attrname!r} and {name!r})"
            )

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        if self.attrname is None:
            raise TypeError(
                "cannot use cached_property instance without calling "
                "__set_name__ on it"
            )
        cache = instance.__dict__
        val = cache.get(self.attrname, _NOT_FOUND)
        if val is _NOT_FOUND:
            val = self.func(instance)
            cache[self.attrname] = val
        return val
