"""X.501 distinguished names (issuer / subject fields of a certificate)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..asn1 import (
    OID,
    ObjectIdentifier,
    encode_printable_string,
    encode_sequence,
    encode_set,
    encode_tlv,
    encode_utf8_string,
)
from ..asn1.tags import Tag


@dataclass(frozen=True)
class RelativeName:
    """One AttributeTypeAndValue, e.g. ``CN=example.org``."""

    attribute: ObjectIdentifier
    value: str

    def encode(self) -> bytes:
        # countryName must be PrintableString per RFC 5280; everything else we
        # emit as UTF8String, which is what modern CAs do.
        if self.attribute.dotted == OID.COUNTRY.dotted:
            value = encode_printable_string(self.value)
        else:
            value = encode_utf8_string(self.value)
        return encode_set(encode_sequence(self.attribute.encode(), value))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        short = {
            OID.COMMON_NAME.dotted: "CN",
            OID.COUNTRY.dotted: "C",
            OID.ORGANIZATION.dotted: "O",
            OID.ORG_UNIT.dotted: "OU",
            OID.LOCALITY.dotted: "L",
            OID.STATE.dotted: "ST",
        }.get(self.attribute.dotted, self.attribute.name or self.attribute.dotted)
        return f"{short}={self.value}"


@dataclass(frozen=True)
class DistinguishedName:
    """An ordered RDNSequence."""

    rdns: Tuple[RelativeName, ...] = field(default_factory=tuple)

    @classmethod
    def build(
        cls,
        common_name: Optional[str] = None,
        organization: Optional[str] = None,
        country: Optional[str] = None,
        org_unit: Optional[str] = None,
        locality: Optional[str] = None,
        state: Optional[str] = None,
    ) -> "DistinguishedName":
        """Build a DN in the conventional C, ST, L, O, OU, CN order."""
        rdns: List[RelativeName] = []
        if country:
            rdns.append(RelativeName(OID.COUNTRY, country))
        if state:
            rdns.append(RelativeName(OID.STATE, state))
        if locality:
            rdns.append(RelativeName(OID.LOCALITY, locality))
        if organization:
            rdns.append(RelativeName(OID.ORGANIZATION, organization))
        if org_unit:
            rdns.append(RelativeName(OID.ORG_UNIT, org_unit))
        if common_name:
            rdns.append(RelativeName(OID.COMMON_NAME, common_name))
        return cls(tuple(rdns))

    def encode(self) -> bytes:
        # Memoized on the frozen instance: issuer DNs are encoded once per
        # issued leaf, and chain-hygiene checks re-encode subjects repeatedly.
        cached = getattr(self, "_encoded", None)
        if cached is None:
            cached = encode_tlv(Tag.SEQUENCE, b"".join(rdn.encode() for rdn in self.rdns))
            object.__setattr__(self, "_encoded", cached)
        return cached

    @property
    def common_name(self) -> Optional[str]:
        for rdn in self.rdns:
            if rdn.attribute.dotted == OID.COMMON_NAME.dotted:
                return rdn.value
        return None

    @property
    def organization(self) -> Optional[str]:
        for rdn in self.rdns:
            if rdn.attribute.dotted == OID.ORGANIZATION.dotted:
                return rdn.value
        return None

    def encoded_size(self) -> int:
        return len(self.encode())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return ", ".join(str(rdn) for rdn in self.rdns)
