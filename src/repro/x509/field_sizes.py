"""Per-field size accounting for certificates (paper Figures 2b and 8).

Measured sizes are memoized on the :class:`~repro.x509.certificate.Certificate`
instance itself (the ``_field_sizes`` attribute, set with
``object.__setattr__`` on the frozen dataclass, the same idiom the wire model
uses for its size memos).  The memo relies on the invariant that certificates
are immutable once built — their DER and every structured component are fixed
at :meth:`CertificateBuilder.build` time — so the first measurement stays
valid for the object's lifetime.  This matters because the same CA
certificates appear in thousands of chains: figure02b measures every delivered
certificate of the population, and without the memo the repeated DER
re-encoding of shared intermediates is the largest single cost of
``build_report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..asn1 import OID
from .certificate import Certificate


@dataclass(frozen=True)
class CertificateFieldSizes:
    """Encoded sizes (bytes) of the certificate fields the paper reports."""

    subject: int
    issuer: int
    public_key_info: int
    extensions: int
    signature: int
    other: int
    total: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "Subject": self.subject,
            "Issuer": self.issuer,
            "PublicKeyInfo": self.public_key_info,
            "Extensions": self.extensions,
            "Signature": self.signature,
            "Other": self.other,
            "Total": self.total,
        }

    @property
    def san_share(self) -> float:
        """Placeholder kept for API symmetry; SAN share is computed separately."""
        return 0.0


def measure_field_sizes(certificate: Certificate) -> CertificateFieldSizes:
    """Measure the encoded sizes of a certificate's main fields (memoized).

    The sizes are taken from the actual DER encodings of each component, so
    they sum (together with framing overhead counted as *other*) to the full
    certificate size.  Repeated calls for the same certificate instance return
    the same cached :class:`CertificateFieldSizes` (certificates are frozen,
    see the module docstring).
    """
    cached = getattr(certificate, "_field_sizes", None)
    if cached is not None:
        return cached
    row = getattr(certificate, "_field_size_row", None)
    if row is None:
        subject = certificate.subject.encoded_size()
        issuer = certificate.issuer.encoded_size()
        spki = len(certificate.public_key.spki_der())
        extensions = sum(ext.encoded_size() for ext in certificate.extensions)
        # The signature appears once as the signatureValue BIT STRING; the
        # signatureAlgorithm appears twice (in and outside the TBS) but is
        # small and lands in "other" with serial, version, validity, framing.
        signature = len(certificate.signature_value)
        accounted = subject + issuer + spki + extensions + signature
        row = (
            subject,
            issuer,
            spki,
            extensions,
            signature,
            max(certificate.size - accounted, 0),
            certificate.size,
        )
        object.__setattr__(certificate, "_field_size_row", row)
    sizes = CertificateFieldSizes(*row)
    object.__setattr__(certificate, "_field_sizes", sizes)
    return sizes


#: Order of :func:`field_size_row` entries; the first five match
#: ``figure02b.FIELD_NAMES``, the full seven match ``figure08.FIELD_SUM_KEYS``.
FIELD_ROW_KEYS = (
    "subject", "issuer", "public_key_info", "extensions", "signature", "other", "total",
)


def field_size_row(certificate: Certificate) -> tuple:
    """The measured field sizes as a plain tuple, memoized on the certificate.

    Batch entry point for the columnar fold kernels: a shared CA certificate
    appears in thousands of chains per shard, and the whole-shard folds scale
    one row by the certificate's multiplicity instead of re-reading dataclass
    attributes per occurrence.  Row order is :data:`FIELD_ROW_KEYS`.
    """
    cached = getattr(certificate, "_field_size_row", None)
    if cached is None:
        measure_field_sizes(certificate)  # computes and memoizes the row
        cached = certificate._field_size_row
    return cached


def san_byte_share(certificate: Certificate) -> float:
    """Fraction of the certificate's bytes used by the subjectAltName extension.

    Used by the cruise-liner analysis (paper Figure 14 / Appendix E).
    Memoized on the certificate instance: the figure-14 fold revisits the
    same leaf once per delivering deployment.
    """
    cached = getattr(certificate, "_san_share", None)
    if cached is not None:
        return cached
    san = certificate.extension(OID.SUBJECT_ALT_NAME.dotted)
    if san is None or certificate.size == 0:
        share = 0.0
    else:
        share = san.encoded_size() / certificate.size
    object.__setattr__(certificate, "_san_share", share)
    return share


def mean_field_sizes(certificates: Iterable[Certificate]) -> CertificateFieldSizes:
    """Mean per-field sizes over a set of certificates (paper Figure 8 bars)."""
    measurements: List[CertificateFieldSizes] = [measure_field_sizes(c) for c in certificates]
    if not measurements:
        return CertificateFieldSizes(0, 0, 0, 0, 0, 0, 0)
    count = len(measurements)

    def avg(getter) -> int:
        return int(round(sum(getter(m) for m in measurements) / count))

    return CertificateFieldSizes(
        subject=avg(lambda m: m.subject),
        issuer=avg(lambda m: m.issuer),
        public_key_info=avg(lambda m: m.public_key_info),
        extensions=avg(lambda m: m.extensions),
        signature=avg(lambda m: m.signature),
        other=avg(lambda m: m.other),
        total=avg(lambda m: m.total),
    )


def mean_from_sums(sums: Dict[str, int], count: int) -> CertificateFieldSizes:
    """Mean field sizes from exact integer per-field sums over ``count`` certs.

    The integer sums are order-insensitive, so streaming reducers can merge
    them per shard and still round to exactly what :func:`mean_field_sizes`
    computes over the same certificates.
    """
    if count == 0:
        return CertificateFieldSizes(0, 0, 0, 0, 0, 0, 0)

    def avg(name: str) -> int:
        return int(round(sums[name] / count))

    return CertificateFieldSizes(
        subject=avg("subject"),
        issuer=avg("issuer"),
        public_key_info=avg("public_key_info"),
        extensions=avg("extensions"),
        signature=avg("signature"),
        other=avg("other"),
        total=avg("total"),
    )
