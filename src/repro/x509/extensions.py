"""X.509 v3 extensions with real DER encodings.

Extensions are the single largest contributor to certificate size in the
paper's Figure 2(b), and subject-alternative-name bloat is the subject of its
Appendix E (cruise-liner certificates), so the encodings here are faithful.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..asn1 import (
    OID,
    ObjectIdentifier,
    encode_bit_string,
    encode_boolean,
    encode_ia5_string,
    encode_integer,
    encode_octet_string,
    encode_sequence,
    encode_tlv,
)
from ..asn1.tags import Tag


@dataclass(frozen=True)
class Extension:
    """A generic encoded extension; concrete classes build the value bytes."""

    oid: ObjectIdentifier
    critical: bool
    value: bytes  # the DER content placed inside the extnValue OCTET STRING

    def encode(self) -> bytes:
        # Memoized on the frozen instance: issuer-constant extensions (AKI,
        # AIA, key usage, policies) are shared across every leaf a CA issues.
        cached = getattr(self, "_encoded", None)
        if cached is None:
            parts = [self.oid.encode()]
            if self.critical:
                parts.append(encode_boolean(True))
            parts.append(encode_octet_string(self.value))
            cached = encode_sequence(*parts)
            object.__setattr__(self, "_encoded", cached)
        return cached

    @property
    def name(self) -> str:
        return self.oid.name or self.oid.dotted

    def encoded_size(self) -> int:
        return len(self.encode())


# ---------------------------------------------------------------------------
# Concrete extensions
# ---------------------------------------------------------------------------

def BasicConstraints(ca: bool, path_length: Optional[int] = None, critical: bool = True) -> Extension:
    """basicConstraints ::= SEQUENCE { cA BOOLEAN DEFAULT FALSE, pathLen INTEGER OPTIONAL }"""
    parts = []
    if ca:
        parts.append(encode_boolean(True))
    if path_length is not None:
        parts.append(encode_integer(path_length))
    return Extension(OID.BASIC_CONSTRAINTS, critical, encode_sequence(*parts))


def KeyUsage(
    digital_signature: bool = False,
    key_encipherment: bool = False,
    key_cert_sign: bool = False,
    crl_sign: bool = False,
    critical: bool = True,
) -> Extension:
    """keyUsage BIT STRING with the flags used by Web PKI certificates."""
    bits = 0
    if digital_signature:
        bits |= 0x80
    if key_encipherment:
        bits |= 0x20
    if key_cert_sign:
        bits |= 0x04
    if crl_sign:
        bits |= 0x02
    if bits == 0:
        value = encode_bit_string(b"", 0)
    else:
        # Count trailing zero bits in the single flag octet.
        unused = 0
        probe = bits
        while probe and not probe & 1:
            unused += 1
            probe >>= 1
        value = encode_bit_string(bytes([bits]), unused)
    return Extension(OID.KEY_USAGE, critical, value)


def ExtendedKeyUsage(purposes: Sequence[ObjectIdentifier] = (), critical: bool = False) -> Extension:
    purposes = purposes or (OID.SERVER_AUTH, OID.CLIENT_AUTH)
    return Extension(OID.EXTENDED_KEY_USAGE, critical, encode_sequence(*(p.encode() for p in purposes)))


def SubjectAlternativeName(dns_names: Sequence[str], critical: bool = False) -> Extension:
    """subjectAltName with dNSName GeneralNames ([2] IA5String)."""
    names = []
    for dns in dns_names:
        content = dns.encode("ascii")
        names.append(encode_tlv(0x82, content))  # context [2], primitive
    return Extension(OID.SUBJECT_ALT_NAME, critical, encode_sequence(*names))


def SubjectKeyIdentifier(key_id: bytes, critical: bool = False) -> Extension:
    return Extension(OID.SUBJECT_KEY_IDENTIFIER, critical, encode_octet_string(key_id))


def AuthorityKeyIdentifier(key_id: bytes, critical: bool = False) -> Extension:
    """authorityKeyIdentifier with keyIdentifier [0] only (the common form)."""
    inner = encode_tlv(0x80, key_id)  # context [0], primitive
    return Extension(OID.AUTHORITY_KEY_IDENTIFIER, critical, encode_sequence(inner))


def AuthorityInformationAccess(
    ocsp_url: Optional[str] = None,
    ca_issuers_url: Optional[str] = None,
    critical: bool = False,
) -> Extension:
    descriptions = []
    if ocsp_url:
        descriptions.append(
            encode_sequence(OID.OCSP.encode(), encode_tlv(0x86, ocsp_url.encode("ascii")))
        )
    if ca_issuers_url:
        descriptions.append(
            encode_sequence(OID.CA_ISSUERS.encode(), encode_tlv(0x86, ca_issuers_url.encode("ascii")))
        )
    return Extension(OID.AUTHORITY_INFO_ACCESS, critical, encode_sequence(*descriptions))


def CertificatePolicies(
    policy_oids: Sequence[ObjectIdentifier] = (),
    cps_url: Optional[str] = None,
    critical: bool = False,
) -> Extension:
    policy_oids = policy_oids or (OID.DOMAIN_VALIDATED,)
    policies = []
    for oid in policy_oids:
        if cps_url:
            qualifier = encode_sequence(
                ObjectIdentifier("1.3.6.1.5.5.7.2.1", "cps").encode(),
                encode_ia5_string(cps_url),
            )
            policies.append(encode_sequence(oid.encode(), encode_sequence(qualifier)))
        else:
            policies.append(encode_sequence(oid.encode()))
    return Extension(OID.CERTIFICATE_POLICIES, critical, encode_sequence(*policies))


def CrlDistributionPoints(urls: Sequence[str], critical: bool = False) -> Extension:
    points = []
    for url in urls:
        general_name = encode_tlv(0x86, url.encode("ascii"))
        full_name = encode_tlv(0xA0, general_name)  # [0] constructed
        distribution_point_name = encode_tlv(0xA0, full_name)  # [0] constructed
        points.append(encode_sequence(distribution_point_name))
    return Extension(OID.CRL_DISTRIBUTION_POINTS, critical, encode_sequence(*points))


def SignedCertificateTimestamps(count: int = 2, log_seed: str = "ct-log", critical: bool = False) -> Extension:
    """An embedded SCT list.  Real SCTs are ~120 bytes each; we model that."""
    scts = []
    for index in range(count):
        body = hashlib.sha256(f"{log_seed}:{index}".encode()).digest() * 4  # 128 bytes
        entry = len(body[:118]).to_bytes(2, "big") + body[:118]
        scts.append(entry)
    blob = b"".join(scts)
    tls_list = len(blob).to_bytes(2, "big") + blob
    return Extension(OID.SCT_LIST, critical, encode_octet_string(tls_list))


def encode_extensions(extensions: Sequence[Extension]) -> bytes:
    """Encode the Extensions SEQUENCE wrapped in the explicit [3] tag."""
    sequence = encode_tlv(Tag.SEQUENCE, b"".join(ext.encode() for ext in extensions))
    return encode_tlv(0xA3, sequence)


@dataclass(frozen=True)
class SanSummary:
    """Byte accounting for subject alternative names (paper Figure 14)."""

    dns_names: Tuple[str, ...] = field(default_factory=tuple)
    encoded_size: int = 0

    @classmethod
    def from_extension(cls, extension: Extension) -> "SanSummary":
        if extension.oid.dotted != OID.SUBJECT_ALT_NAME.dotted:
            raise ValueError("not a subjectAltName extension")
        return cls(dns_names=(), encoded_size=extension.encoded_size())
