"""Public key and signature algorithm models.

The project does not perform real cryptography.  It models public keys and
signatures so that their DER encodings have exactly the sizes real keys and
signatures would have, because those sizes determine certificate-chain sizes
and hence QUIC handshake behaviour (the paper's Table 2 and Figure 8).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from ..asn1 import (
    OID,
    encode_bit_string,
    encode_integer,
    encode_null,
    encode_sequence,
)


class KeyAlgorithm(Enum):
    """Public-key algorithm and size, the granularity used in the paper."""

    RSA_2048 = ("RSA", 2048)
    RSA_3072 = ("RSA", 3072)
    RSA_4096 = ("RSA", 4096)
    ECDSA_P256 = ("ECDSA", 256)
    ECDSA_P384 = ("ECDSA", 384)

    def __init__(self, family: str, bits: int) -> None:
        self.family = family
        self.bits = bits

    @property
    def is_rsa(self) -> bool:
        return self.family == "RSA"

    @property
    def is_ecdsa(self) -> bool:
        return self.family == "ECDSA"

    @property
    def label(self) -> str:
        return f"{self.family}-{self.bits}"


class SignatureAlgorithm(Enum):
    """Signature algorithms seen in the wild for Web PKI certificates."""

    SHA256_WITH_RSA = ("RSA", 256, OID.SHA256_WITH_RSA)
    SHA384_WITH_RSA = ("RSA", 384, OID.SHA384_WITH_RSA)
    ECDSA_WITH_SHA256 = ("ECDSA", 256, OID.ECDSA_WITH_SHA256)
    ECDSA_WITH_SHA384 = ("ECDSA", 384, OID.ECDSA_WITH_SHA384)

    def __init__(self, family: str, hash_bits: int, oid) -> None:
        self.family = family
        self.hash_bits = hash_bits
        self.oid = oid

    def encode_algorithm_identifier(self) -> bytes:
        """Encode the AlgorithmIdentifier SEQUENCE for this signature."""
        if self.family == "RSA":
            return encode_sequence(self.oid.encode(), encode_null())
        return encode_sequence(self.oid.encode())

    @staticmethod
    def for_signer(key: "PublicKey") -> "SignatureAlgorithm":
        """The signature algorithm a CA with ``key`` typically uses."""
        if key.algorithm.is_rsa:
            return SignatureAlgorithm.SHA256_WITH_RSA
        if key.algorithm is KeyAlgorithm.ECDSA_P384:
            return SignatureAlgorithm.ECDSA_WITH_SHA384
        return SignatureAlgorithm.ECDSA_WITH_SHA256


def _deterministic_bytes(seed: str, length: int) -> bytes:
    """Expand ``seed`` into ``length`` pseudo-random bytes (SHA-256 counter mode)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(f"{seed}:{counter}".encode()).digest())
        counter += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class PublicKey:
    """A modelled public key bound to an owner identity (for determinism)."""

    algorithm: KeyAlgorithm
    owner: str

    def spki_der(self) -> bytes:
        """Encode the SubjectPublicKeyInfo structure (RFC 5280 §4.1.2.7).

        Memoized on the frozen instance: every leaf issuance asks for the SPKI
        at least twice (key identifier + TBS encoding) and issuer keys are
        asked once per issued leaf.
        """
        cached = getattr(self, "_spki_der", None)
        if cached is None:
            cached = self._build_spki_der()
            object.__setattr__(self, "_spki_der", cached)
        return cached

    def _build_spki_der(self) -> bytes:
        if self.algorithm.is_rsa:
            modulus_len = self.algorithm.bits // 8
            modulus_bytes = _deterministic_bytes(f"rsa-mod:{self.owner}", modulus_len)
            # Force the top bit so the modulus has full bit length, and make it odd.
            modulus = int.from_bytes(modulus_bytes, "big") | (1 << (self.algorithm.bits - 1)) | 1
            rsa_key = encode_sequence(encode_integer(modulus), encode_integer(65537))
            algorithm = encode_sequence(OID.RSA_ENCRYPTION.encode(), encode_null())
            return encode_sequence(algorithm, encode_bit_string(rsa_key))
        # ECDSA: uncompressed point, 0x04 || X || Y.
        coord_len = self.algorithm.bits // 8
        point = b"\x04" + _deterministic_bytes(f"ec-point:{self.owner}", 2 * coord_len)
        curve = OID.CURVE_P256 if self.algorithm is KeyAlgorithm.ECDSA_P256 else OID.CURVE_P384
        algorithm = encode_sequence(OID.EC_PUBLIC_KEY.encode(), curve.encode())
        return encode_sequence(algorithm, encode_bit_string(point))

    def key_identifier(self) -> bytes:
        """A 20-byte key identifier (SHA-1-sized) derived from the SPKI."""
        cached = getattr(self, "_key_identifier", None)
        if cached is None:
            cached = hashlib.sha256(self.spki_der()).digest()[:20]
            object.__setattr__(self, "_key_identifier", cached)
        return cached

    def sign(self, message: bytes, algorithm: SignatureAlgorithm) -> bytes:
        """Produce a signature *value* with realistic length for ``algorithm``.

        RSA signatures are exactly the modulus size.  ECDSA signatures are a
        DER SEQUENCE of two integers whose encoded size matches real-world
        signatures (70–72 bytes for P-256, 102–104 for P-384).
        """
        digest = hashlib.sha256(message + self.owner.encode()).digest()
        if algorithm.family == "RSA":
            length = self.algorithm.bits // 8 if self.algorithm.is_rsa else 256
            return _deterministic_bytes(f"rsa-sig:{self.owner}:{digest.hex()}", length)
        coord_len = 48 if algorithm is SignatureAlgorithm.ECDSA_WITH_SHA384 else 32
        r_bytes = _deterministic_bytes(f"ecdsa-r:{self.owner}:{digest.hex()}", coord_len)
        s_bytes = _deterministic_bytes(f"ecdsa-s:{self.owner}:{digest.hex()}", coord_len)
        r = int.from_bytes(r_bytes, "big") | (1 << (coord_len * 8 - 1))
        s = int.from_bytes(s_bytes, "big") | (1 << (coord_len * 8 - 1))
        return encode_sequence(encode_integer(r), encode_integer(s))
