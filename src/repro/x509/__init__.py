"""X.509 v3 certificate substrate.

The modules in this package build real DER-encoded certificates from Python
descriptions (names, keys, extensions, validity) so that all byte sizes used by
the analysis — the quantity the paper's results hinge on — come from actual
encodings rather than constants.

Private-key material is *modelled*, not generated: we produce public keys and
signatures with the correct structure and the byte lengths dictated by the
chosen algorithm (RSA-2048/3072/4096, ECDSA P-256/P-384), filled with
deterministic pseudo-random bytes.  This keeps certificate generation fast for
populations of hundreds of thousands of domains while being byte-exact where it
matters.
"""

from .keys import KeyAlgorithm, PublicKey, SignatureAlgorithm
from .name import DistinguishedName, RelativeName
from .extensions import (
    Extension,
    BasicConstraints,
    KeyUsage,
    ExtendedKeyUsage,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
    AuthorityKeyIdentifier,
    AuthorityInformationAccess,
    CertificatePolicies,
    CrlDistributionPoints,
    SignedCertificateTimestamps,
)
from .certificate import Certificate, CertificateBuilder, Validity
from .chain import CertificateChain, ChainOrderError
from .field_sizes import CertificateFieldSizes, measure_field_sizes
from .ca import CertificateAuthority, CAProfile, issue_leaf, build_hierarchy

__all__ = [
    "KeyAlgorithm",
    "SignatureAlgorithm",
    "PublicKey",
    "DistinguishedName",
    "RelativeName",
    "Extension",
    "BasicConstraints",
    "KeyUsage",
    "ExtendedKeyUsage",
    "SubjectAlternativeName",
    "SubjectKeyIdentifier",
    "AuthorityKeyIdentifier",
    "AuthorityInformationAccess",
    "CertificatePolicies",
    "CrlDistributionPoints",
    "SignedCertificateTimestamps",
    "Validity",
    "Certificate",
    "CertificateBuilder",
    "CertificateChain",
    "ChainOrderError",
    "CertificateFieldSizes",
    "measure_field_sizes",
    "CertificateAuthority",
    "CAProfile",
    "issue_leaf",
    "build_hierarchy",
]
