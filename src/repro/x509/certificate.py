"""X.509 v3 certificate construction (RFC 5280 §4.1)."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Optional, Sequence, Tuple

from ..asn1 import (
    OID,
    encode_bit_string,
    encode_explicit,
    encode_integer,
    encode_sequence,
    encode_utc_time,
)
from .extensions import Extension, encode_extensions
from .keys import KeyAlgorithm, PublicKey, SignatureAlgorithm
from .name import DistinguishedName


@dataclass(frozen=True)
class Validity:
    """Certificate validity window."""

    not_before: datetime
    not_after: datetime

    @classmethod
    def for_days(cls, days: int, start: Optional[datetime] = None) -> "Validity":
        start = start or datetime(2022, 9, 1, tzinfo=timezone.utc)
        return cls(start, start + timedelta(days=days))

    def encode(self) -> bytes:
        return encode_sequence(encode_utc_time(self.not_before), encode_utc_time(self.not_after))


@dataclass(frozen=True)
class Certificate:
    """An encoded certificate plus the structured description it came from.

    Keeping the description next to the DER bytes lets the analysis layer ask
    both "how many bytes" and "which field contributed them" without
    re-parsing.
    """

    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: PublicKey
    signature_algorithm: SignatureAlgorithm
    serial_number: int
    validity: Validity
    extensions: Tuple[Extension, ...]
    is_ca: bool
    der: bytes
    tbs_der: bytes
    signature_value: bytes

    @property
    def size(self) -> int:
        """Total DER-encoded size in bytes."""
        return len(self.der)

    @property
    def subject_common_name(self) -> Optional[str]:
        return self.subject.common_name

    @property
    def issuer_common_name(self) -> Optional[str]:
        return self.issuer.common_name

    @property
    def is_self_signed(self) -> bool:
        return self.subject.encode() == self.issuer.encode()

    @property
    def key_algorithm(self) -> KeyAlgorithm:
        return self.public_key.algorithm

    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the DER encoding (hex)."""
        return hashlib.sha256(self.der).hexdigest()

    def extension(self, dotted_oid: str) -> Optional[Extension]:
        for ext in self.extensions:
            if ext.oid.dotted == dotted_oid:
                return ext
        return None

    @property
    def san_extension(self) -> Optional[Extension]:
        return self.extension(OID.SUBJECT_ALT_NAME.dotted)

    @property
    def san_names(self) -> Tuple[str, ...]:
        names = getattr(self, "_san_names", ())
        if callable(names):
            # Issuance memoizes the names eagerly; certificates rebuilt from
            # a skeleton-store leaf record memoize a thunk instead (the names
            # are derivable from the chain spec) and expand it on first read.
            names = tuple(names())
            object.__setattr__(self, "_san_names", names)
        return names

    def __getattr__(self, name: str):
        # Certificates rebuilt from a skeleton-store leaf record carry a
        # ``_deferred`` record tuple instead of the fields the scan layer
        # never reads (subject DN, public key, validity, extension tuple,
        # TBS and signature slices); the first access to any of them expands
        # the record into ``__dict__`` and the instance behaves like a fresh
        # one.  The import is deferred to break the issuance→certificate
        # cycle; expansion is rare, so its cost is irrelevant.
        record = self.__dict__.get("_deferred")
        if record is None:
            raise AttributeError(name)
        from .issuance import expand_deferred_leaf_fields

        del self.__dict__["_deferred"]
        self.__dict__.update(expand_deferred_leaf_fields(self.__dict__["der"], record))
        try:
            return self.__dict__[name]
        except KeyError:
            raise AttributeError(name) from None

    def __getstate__(self):
        if "_deferred" in self.__dict__:
            self.validity  # deferred thunks don't pickle; expand first
        return dict(self.__dict__)


@dataclass
class CertificateBuilder:
    """Builds and "signs" certificates.

    The builder produces real DER for every field.  The signature value is a
    modelled signature whose size matches the signing key's algorithm (see
    :mod:`repro.x509.keys`).
    """

    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: PublicKey
    issuer_key: PublicKey
    validity: Validity
    serial_number: int
    extensions: Sequence[Extension] = field(default_factory=tuple)
    is_ca: bool = False
    san_names: Tuple[str, ...] = ()
    signature_algorithm: Optional[SignatureAlgorithm] = None

    def build(self) -> Certificate:
        signature_algorithm = self.signature_algorithm or SignatureAlgorithm.for_signer(self.issuer_key)
        algorithm_der = signature_algorithm.encode_algorithm_identifier()

        extensions = tuple(self.extensions)
        subject_der = self.subject.encode()
        issuer_der = self.issuer.encode()
        spki_der = self.public_key.spki_der()
        tbs = encode_sequence(
            encode_explicit(0, encode_integer(2)),  # version v3
            encode_integer(self.serial_number),
            algorithm_der,
            issuer_der,
            self.validity.encode(),
            subject_der,
            spki_der,
            encode_extensions(extensions),
        )
        signature = self.issuer_key.sign(tbs, signature_algorithm)
        der = encode_sequence(tbs, algorithm_der, encode_bit_string(signature))
        certificate = Certificate(
            subject=self.subject,
            issuer=self.issuer,
            public_key=self.public_key,
            signature_algorithm=signature_algorithm,
            serial_number=self.serial_number,
            validity=self.validity,
            extensions=extensions,
            is_ca=self.is_ca,
            der=der,
            tbs_der=tbs,
            signature_value=signature,
        )
        object.__setattr__(certificate, "_san_names", tuple(self.san_names))
        # Every component encoding is in hand right here, so the per-field
        # accounting (paper Figures 2b/8) is a handful of len() calls instead
        # of a re-walk of the structured fields at measurement time (see
        # repro.x509.field_sizes, which reads this row back as its memo).
        ext_total = sum(len(ext.encode()) for ext in extensions)
        accounted = (
            len(subject_der) + len(issuer_der) + len(spki_der) + ext_total + len(signature)
        )
        object.__setattr__(
            certificate,
            "_field_size_row",
            (
                len(subject_der),
                len(issuer_der),
                len(spki_der),
                ext_total,
                len(signature),
                max(len(der) - accounted, 0),
                len(der),
            ),
        )
        return certificate


def serial_from_seed(seed: str, bits: int = 128) -> int:
    """Derive a deterministic positive serial number from a seed string."""
    digest = hashlib.sha256(seed.encode()).digest()
    value = int.from_bytes(digest[: bits // 8], "big")
    return value | (1 << (bits - 2))  # keep it large but positive
