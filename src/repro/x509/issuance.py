"""Leaf-issuance fast path: per-(issuer, key-algorithm) encoded templates.

Population generation issues one leaf certificate per TLS-speaking domain, but
most of every leaf's DER is *not* per-domain: the signature AlgorithmIdentifier,
the issuer DN, and six of the nine extensions depend only on the issuing CA and
the leaf key algorithm.  :func:`leaf_template` precomputes those blocks once
per ``(issuer, key_algorithm)`` pair and :func:`issue_leaf_fast` assembles a
certificate from them plus the genuinely per-leaf parts (subject DN, key,
SANs, SCTs, serial, signature).

The output is byte-identical to :func:`repro.x509.ca.issue_leaf` — the
reference implementation that encodes everything from scratch — which
``tests/test_population_skeleton.py`` pins for every profile × key algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Sequence, Tuple

from ..asn1 import (
    OID,
    encode_bit_string,
    encode_explicit,
    encode_integer,
    encode_sequence,
    encode_tlv,
)
from ..asn1.tags import Tag
from .certificate import Certificate, Validity, serial_from_seed
from .extensions import (
    AuthorityInformationAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CertificatePolicies,
    Extension,
    ExtendedKeyUsage,
    KeyUsage,
    SignedCertificateTimestamps,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
)
from .keys import KeyAlgorithm, PublicKey, SignatureAlgorithm
from .name import DistinguishedName, RelativeName

#: The constant ``[0] EXPLICIT INTEGER 2`` (version v3) block of every TBS.
_VERSION_DER = encode_explicit(0, encode_integer(2))

#: Extensions shared by *every* issued leaf, whoever signs it.
_EKU = ExtendedKeyUsage()
_BASIC_CONSTRAINTS = BasicConstraints(ca=False, critical=True)
_POLICIES = CertificatePolicies(policy_oids=(OID.DOMAIN_VALIDATED,))


def _slug(text: str) -> str:
    """Mirror of :func:`repro.x509.ca._slug` (kept local to avoid a cycle)."""
    return "".join(ch.lower() if ch.isalnum() else "-" for ch in text).strip("-")


@lru_cache(maxsize=32)
def _validity_for_days(days: int) -> Tuple[Validity, bytes]:
    """Leaf validity windows come in a handful of day counts; encode each once."""
    validity = Validity.for_days(days)
    return validity, validity.encode()


@dataclass(frozen=True)
class LeafTemplate:
    """Precomputed issuance state for one ``(issuer, leaf key algorithm)`` pair.

    ``leading_extensions_der`` covers extension positions 1–3 (key usage, EKU,
    basic constraints), ``issuer_extensions_der`` positions 5–6 (AKI, AIA) and
    ``policies_der`` position 8 — exactly the layout ``issue_leaf`` emits, so
    splicing the per-leaf SKI/SAN/SCT encodings between them reproduces the
    reference extension sequence byte for byte.
    """

    issuer_name: str
    issuer_subject: DistinguishedName
    issuer_subject_der: bytes
    issuer_key: PublicKey
    key_algorithm: KeyAlgorithm
    signature_algorithm: SignatureAlgorithm
    algorithm_der: bytes
    key_usage: Extension
    authority_key_identifier: Extension
    authority_info_access: Extension
    leading_extensions_der: bytes
    issuer_extensions_der: bytes
    policies_der: bytes


def leaf_template(issuer, key_algorithm: KeyAlgorithm) -> LeafTemplate:
    """The (cached) :class:`LeafTemplate` of one CA × leaf key algorithm.

    ``issuer`` is a :class:`repro.x509.ca.CertificateAuthority` (duck-typed to
    avoid an import cycle: anything with ``certificate``/``key``/``name``).
    Templates are memoized on the issuer instance, so they live exactly as
    long as the CA hierarchy that owns them.
    """
    templates: Dict[KeyAlgorithm, LeafTemplate] = getattr(issuer, "_leaf_templates", None)
    if templates is None:
        templates = {}
        object.__setattr__(issuer, "_leaf_templates", templates)
    template = templates.get(key_algorithm)
    if template is not None:
        return template

    signature_algorithm = SignatureAlgorithm.for_signer(issuer.key)
    issuer_subject = issuer.certificate.subject
    issuer_org = issuer_subject.organization or issuer.name
    key_usage = KeyUsage(
        digital_signature=True, key_encipherment=key_algorithm.is_rsa, critical=True
    )
    authority_key_identifier = AuthorityKeyIdentifier(issuer.key.key_identifier())
    authority_info_access = AuthorityInformationAccess(
        ocsp_url=f"http://ocsp.{_slug(issuer_org)}.example",
        ca_issuers_url=f"http://crt.{_slug(issuer_org)}.example/{_slug(issuer.name)}.der",
    )
    template = LeafTemplate(
        issuer_name=issuer.name,
        issuer_subject=issuer_subject,
        issuer_subject_der=issuer_subject.encode(),
        issuer_key=issuer.key,
        key_algorithm=key_algorithm,
        signature_algorithm=signature_algorithm,
        algorithm_der=signature_algorithm.encode_algorithm_identifier(),
        key_usage=key_usage,
        authority_key_identifier=authority_key_identifier,
        authority_info_access=authority_info_access,
        leading_extensions_der=(
            key_usage.encode() + _EKU.encode() + _BASIC_CONSTRAINTS.encode()
        ),
        issuer_extensions_der=(
            authority_key_identifier.encode() + authority_info_access.encode()
        ),
        policies_der=_POLICIES.encode(),
    )
    templates[key_algorithm] = template
    return template


def issue_leaf_fast(
    template: LeafTemplate,
    domain: str,
    san_names: Sequence[str],
    validity_days: int = 90,
) -> Certificate:
    """Issue a leaf from a :class:`LeafTemplate` (byte-identical to ``issue_leaf``)."""
    subject = DistinguishedName.build(common_name=domain)
    key = PublicKey(template.key_algorithm, owner=f"leaf:{domain}")
    serial_number = serial_from_seed(f"leaf:{domain}:{template.issuer_name}")
    subject_key_identifier = SubjectKeyIdentifier(key.key_identifier())
    san = SubjectAlternativeName(list(san_names))
    sct = SignedCertificateTimestamps(count=2, log_seed=f"sct:{domain}")
    validity, validity_der = _validity_for_days(validity_days)

    extensions_content = b"".join(
        (
            template.leading_extensions_der,
            subject_key_identifier.encode(),
            template.issuer_extensions_der,
            san.encode(),
            template.policies_der,
            sct.encode(),
        )
    )
    extensions_der = encode_tlv(0xA3, encode_tlv(Tag.SEQUENCE, extensions_content))

    subject_der = subject.encode()
    spki_der = key.spki_der()
    tbs = encode_sequence(
        _VERSION_DER,
        encode_integer(serial_number),
        template.algorithm_der,
        template.issuer_subject_der,
        validity_der,
        subject_der,
        spki_der,
        extensions_der,
    )
    signature = template.issuer_key.sign(tbs, template.signature_algorithm)
    der = encode_sequence(tbs, template.algorithm_der, encode_bit_string(signature))
    certificate = Certificate(
        subject=subject,
        issuer=template.issuer_subject,
        public_key=key,
        signature_algorithm=template.signature_algorithm,
        serial_number=serial_number,
        validity=validity,
        extensions=(
            template.key_usage,
            _EKU,
            _BASIC_CONSTRAINTS,
            subject_key_identifier,
            template.authority_key_identifier,
            template.authority_info_access,
            san,
            _POLICIES,
            sct,
        ),
        is_ca=False,
        der=der,
        tbs_der=tbs,
        signature_value=signature,
    )
    object.__setattr__(certificate, "_san_names", tuple(san_names))
    # Per-field accounting while every component encoding is in hand:
    # ``extensions_content`` is exactly the concatenation of the nine
    # extensions' encodings, so its length is their encoded-size sum (see
    # repro.x509.field_sizes, which reads this row back as its memo).
    accounted = (
        len(subject_der)
        + len(template.issuer_subject_der)
        + len(spki_der)
        + len(extensions_content)
        + len(signature)
    )
    object.__setattr__(
        certificate,
        "_field_size_row",
        (
            len(subject_der),
            len(template.issuer_subject_der),
            len(spki_der),
            len(extensions_content),
            len(signature),
            max(len(der) - accounted, 0),
            len(der),
        ),
    )
    return certificate


# ---------------------------------------------------------------------------
# Leaf records: re-hydrating issued leaves without re-running issuance
# ---------------------------------------------------------------------------
#
# The persistent skeleton store (repro.scanners.skeleton_store) caches the
# generation phase's *output*, and most of that output's cost is leaf
# issuance: DER assembly, SPKI/key-identifier/SCT hashing, signing.  A leaf
# record captures exactly the per-leaf artifacts of issue_leaf_fast — the
# finished DER, the TBS/signature slice lengths, the serial, the three
# per-leaf extension values and the field-size memo — so a warm start
# reassembles a byte-identical Certificate from template-shared parts plus
# stored bytes, with zero hashing and zero DER encoding.

#: Extension tuple positions of the per-leaf extensions in issue_leaf_fast's
#: nine-extension layout (SKI, SAN, SCT); every other position is shared with
#: the template or a module constant.
_SKI_POSITION, _SAN_POSITION, _SCT_POSITION = 3, 6, 8

_COMMON_NAME_OID = OID.COMMON_NAME
_SKI_OID = OID.SUBJECT_KEY_IDENTIFIER
_SAN_OID = OID.SUBJECT_ALT_NAME
_SCT_OID = OID.SCT_LIST


def leaf_record(
    certificate: Certificate,
) -> Tuple[bytes, int, int, int, bytes, bytes, bytes, Tuple[int, ...]]:
    """The serializable per-leaf remainder of an ``issue_leaf_fast`` output.

    Everything *not* in the record is a function of the leaf's template and
    its :class:`~repro.webpki.skeleton.ChainSpec` (subject DN, public key,
    validity, shared extensions), so ``leaf_from_record`` rebuilds the exact
    certificate from ``(template, domain, san_names, validity_days, record)``.
    """
    row = getattr(certificate, "_field_size_row", None)
    if row is None:
        raise ValueError(
            "certificate was not issued by issue_leaf_fast; cannot build a leaf record"
        )
    extensions = certificate.extensions
    return (
        certificate.der,
        len(certificate.tbs_der),
        len(certificate.signature_value),
        certificate.serial_number,
        extensions[_SKI_POSITION].value,
        extensions[_SAN_POSITION].value,
        extensions[_SCT_POSITION].value,
        row,
    )


def leaf_from_record(
    template: LeafTemplate,
    domain: str,
    san_names: "Sequence[str] | Callable[[], Sequence[str]]",
    validity_days: int,
    der: bytes,
    tbs_length: int,
    signature_length: int,
    serial_number: int,
    ski_value: bytes,
    san_value: bytes,
    sct_value: bytes,
    field_size_row: Tuple[int, ...],
) -> Certificate:
    """Rebuild an ``issue_leaf_fast`` output from its :func:`leaf_record`.

    The TBS and signature are slices of the stored DER (``der`` is
    ``SEQUENCE(tbs, algorithm, BIT STRING(signature))``, so the TBS starts
    right after the outer header and the signature is the DER's tail).  This
    is the warm path's hot loop — ~3k certificates per 5k-domain campaign —
    so only the fields the scan layer reads are populated eagerly; subject
    DN, public key, validity, the extension tuple and the TBS/signature
    slices live behind a ``_deferred`` thunk that
    :meth:`Certificate.__getattr__` expands on first access, and
    ``san_names`` may likewise be a thunk.
    """
    certificate = Certificate.__new__(Certificate)
    certificate.__dict__.update(
        {
            "issuer": template.issuer_subject,
            "signature_algorithm": template.signature_algorithm,
            "serial_number": serial_number,
            "is_ca": False,
            "der": der,
            "_san_names": san_names if callable(san_names) else tuple(san_names),
            "_field_size_row": field_size_row,
            "_deferred": (
                template,
                domain,
                validity_days,
                ski_value,
                san_value,
                sct_value,
                tbs_length,
                signature_length,
            ),
        }
    )
    return certificate


def expand_deferred_leaf_fields(der: bytes, record: tuple) -> dict:
    """Build the fields a ``_deferred`` leaf record postponed.

    Called (once per certificate, at most) by ``Certificate.__getattr__``
    when something reads a field the skeleton-store warm path left deferred.
    """
    (
        template,
        domain,
        validity_days,
        ski_value,
        san_value,
        sct_value,
        tbs_length,
        signature_length,
    ) = record
    subject = DistinguishedName.__new__(DistinguishedName)
    relative = RelativeName.__new__(RelativeName)
    relative.__dict__.update({"attribute": _COMMON_NAME_OID, "value": domain})
    subject.__dict__.update({"rdns": (relative,)})
    key = PublicKey.__new__(PublicKey)
    key.__dict__.update(
        {"algorithm": template.key_algorithm, "owner": f"leaf:{domain}"}
    )
    ski = Extension.__new__(Extension)
    ski.__dict__.update({"oid": _SKI_OID, "critical": False, "value": ski_value})
    san = Extension.__new__(Extension)
    san.__dict__.update({"oid": _SAN_OID, "critical": False, "value": san_value})
    sct = Extension.__new__(Extension)
    sct.__dict__.update({"oid": _SCT_OID, "critical": False, "value": sct_value})
    validity, _ = _validity_for_days(validity_days)
    header = 2 + ((der[1] & 0x7F) if der[1] & 0x80 else 0)
    return {
        "subject": subject,
        "public_key": key,
        "validity": validity,
        "extensions": (
            template.key_usage,
            _EKU,
            _BASIC_CONSTRAINTS,
            ski,
            template.authority_key_identifier,
            template.authority_info_access,
            san,
            _POLICIES,
            sct,
        ),
        "tbs_der": der[header : header + tbs_length],
        "signature_value": der[len(der) - signature_length :],
    }
