"""Certificate-authority hierarchy model.

The paper's Figure 7 groups services by the *parent chain* (the intermediates
and optionally the root they deliver).  This module models the CA organisations
that dominate the Web PKI in 2022, with the key algorithms, name sizes and
chain shapes that give their chains the byte sizes the paper reports:

* Let's Encrypt: R3 / E1 intermediates under ISRG Root X1 (RSA-4096) and X2
  (ECDSA P-384); the R3-with-cross-signed-X1 variant that inflates chains.
* Google Trust Services: GTS CA 1C3 / 1D4 / 1P5 under GTS Root R1.
* Cloudflare: Cloudflare Inc ECC CA-3, a short ECDSA chain.
* Sectigo / USERTRUST / Comodo, DigiCert, GlobalSign, GoDaddy, Amazon,
  Starfield, cPanel: the RSA-heavy chains common for HTTPS-only services.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..asn1 import OID
from .certificate import Certificate, CertificateBuilder, Validity, serial_from_seed
from .chain import CertificateChain
from .extensions import (
    AuthorityInformationAccess,
    AuthorityKeyIdentifier,
    BasicConstraints,
    CertificatePolicies,
    CrlDistributionPoints,
    ExtendedKeyUsage,
    KeyUsage,
    SignedCertificateTimestamps,
    SubjectAlternativeName,
    SubjectKeyIdentifier,
)
from .issuance import issue_leaf_fast, leaf_template
from .keys import KeyAlgorithm, PublicKey
from .name import DistinguishedName


@dataclass(frozen=True)
class CertificateAuthority:
    """A CA certificate plus the key it signs with."""

    certificate: Certificate
    key: PublicKey

    @property
    def subject(self) -> DistinguishedName:
        return self.certificate.subject

    @property
    def name(self) -> str:
        return self.certificate.subject.common_name or "unknown CA"


@dataclass(frozen=True)
class CAProfile:
    """Describes one parent-chain deployment option a hosting provider can pick.

    ``delivered_chain`` lists the CA certificates the server ships above the
    leaf, leaf-adjacent first.  ``issuer`` is the CA that signs leaves.
    """

    label: str
    issuer: CertificateAuthority
    delivered_chain: Tuple[Certificate, ...]
    leaf_key_algorithm: KeyAlgorithm
    includes_root: bool = False
    includes_cross_signed: bool = False

    @property
    def parent_chain_size(self) -> int:
        return sum(cert.size for cert in self.delivered_chain)

    def issue(
        self,
        domain: str,
        san_names: Optional[Sequence[str]] = None,
        validity_days: int = 90,
        key_algorithm: Optional[KeyAlgorithm] = None,
    ) -> CertificateChain:
        """Issue a leaf for ``domain`` and return the full delivered chain.

        Issuance runs through the template fast path of
        :mod:`repro.x509.issuance` — byte-identical to :func:`issue_leaf`, but
        the issuer-constant DER blocks are encoded once per
        ``(issuer, key algorithm)`` instead of once per leaf.
        """
        leaf = issue_leaf_fast(
            leaf_template(self.issuer, key_algorithm or self.leaf_key_algorithm),
            domain,
            san_names if san_names is not None else (domain, f"www.{domain}"),
            validity_days=validity_days,
        )
        return CertificateChain((leaf,) + self.delivered_chain)


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

def _make_root(
    common_name: str,
    organization: str,
    country: str,
    key_algorithm: KeyAlgorithm,
    extra_extension_bytes: int = 0,
) -> CertificateAuthority:
    subject = DistinguishedName.build(
        common_name=common_name, organization=organization, country=country
    )
    key = PublicKey(key_algorithm, owner=f"root:{common_name}")
    extensions = [
        BasicConstraints(ca=True, path_length=None),
        KeyUsage(key_cert_sign=True, crl_sign=True),
        SubjectKeyIdentifier(key.key_identifier()),
    ]
    builder = CertificateBuilder(
        subject=subject,
        issuer=subject,
        public_key=key,
        issuer_key=key,
        validity=Validity.for_days(365 * 20),
        serial_number=serial_from_seed(f"root:{common_name}"),
        extensions=extensions,
        is_ca=True,
    )
    return CertificateAuthority(builder.build(), key)


def _make_intermediate(
    parent: CertificateAuthority,
    common_name: str,
    organization: str,
    country: str,
    key_algorithm: KeyAlgorithm,
    with_policies: bool = True,
) -> CertificateAuthority:
    subject = DistinguishedName.build(
        common_name=common_name, organization=organization, country=country
    )
    key = PublicKey(key_algorithm, owner=f"ca:{common_name}")
    extensions = [
        BasicConstraints(ca=True, path_length=0),
        KeyUsage(digital_signature=True, key_cert_sign=True, crl_sign=True),
        SubjectKeyIdentifier(key.key_identifier()),
        AuthorityKeyIdentifier(parent.key.key_identifier()),
        ExtendedKeyUsage(),
        AuthorityInformationAccess(
            ocsp_url=f"http://ocsp.{_slug(organization)}.example",
            ca_issuers_url=f"http://crt.{_slug(organization)}.example/{_slug(common_name)}.der",
        ),
        CrlDistributionPoints([f"http://crl.{_slug(organization)}.example/{_slug(common_name)}.crl"]),
    ]
    if with_policies:
        extensions.append(CertificatePolicies(cps_url=f"https://cps.{_slug(organization)}.example"))
    builder = CertificateBuilder(
        subject=subject,
        issuer=parent.subject,
        public_key=key,
        issuer_key=parent.key,
        validity=Validity.for_days(365 * 5),
        serial_number=serial_from_seed(f"intermediate:{common_name}:{parent.name}"),
        extensions=extensions,
        is_ca=True,
    )
    return CertificateAuthority(builder.build(), key)


def _cross_sign(
    subject_ca: CertificateAuthority, signing_ca: CertificateAuthority
) -> Certificate:
    """Re-issue ``subject_ca``'s certificate under a different (legacy) root.

    This models e.g. *ISRG Root X1 signed by DST Root CA X3*, which some
    servers redundantly deliver instead of relying on the self-signed root in
    the client trust store (paper §4.2, rows 2 and 3 of Figure 7a).  Real
    cross-signs carry the issuing CA's operational extensions (CRL pointer),
    which makes them larger than a bare root.
    """
    signer_org = signing_ca.certificate.subject.organization or signing_ca.name
    extensions = [
        BasicConstraints(ca=True, path_length=None),
        KeyUsage(key_cert_sign=True, crl_sign=True),
        SubjectKeyIdentifier(subject_ca.key.key_identifier()),
        AuthorityKeyIdentifier(signing_ca.key.key_identifier()),
        CrlDistributionPoints([f"http://crl.{_slug(signer_org)}.example/root.crl"]),
    ]
    builder = CertificateBuilder(
        subject=subject_ca.subject,
        issuer=signing_ca.subject,
        public_key=subject_ca.key,
        issuer_key=signing_ca.key,
        validity=Validity.for_days(365 * 3),
        serial_number=serial_from_seed(f"cross:{subject_ca.name}:{signing_ca.name}"),
        extensions=extensions,
        is_ca=True,
    )
    return builder.build()


def issue_leaf(
    issuer: CertificateAuthority,
    domain: str,
    san_names: Optional[Sequence[str]] = None,
    validity_days: int = 90,
    key_algorithm: KeyAlgorithm = KeyAlgorithm.ECDSA_P256,
    sct_count: int = 2,
) -> Certificate:
    """Issue a leaf (end-entity) certificate for a domain."""
    if san_names is None:
        san_names = [domain, f"www.{domain}"]
    subject = DistinguishedName.build(common_name=domain)
    key = PublicKey(key_algorithm, owner=f"leaf:{domain}")
    issuer_org = issuer.certificate.subject.organization or issuer.name
    extensions = [
        KeyUsage(digital_signature=True, key_encipherment=key_algorithm.is_rsa, critical=True),
        ExtendedKeyUsage(),
        BasicConstraints(ca=False, critical=True),
        SubjectKeyIdentifier(key.key_identifier()),
        AuthorityKeyIdentifier(issuer.key.key_identifier()),
        AuthorityInformationAccess(
            ocsp_url=f"http://ocsp.{_slug(issuer_org)}.example",
            ca_issuers_url=f"http://crt.{_slug(issuer_org)}.example/{_slug(issuer.name)}.der",
        ),
        SubjectAlternativeName(list(san_names)),
        CertificatePolicies(policy_oids=(OID.DOMAIN_VALIDATED,)),
        SignedCertificateTimestamps(count=sct_count, log_seed=f"sct:{domain}"),
    ]
    builder = CertificateBuilder(
        subject=subject,
        issuer=issuer.subject,
        public_key=key,
        issuer_key=issuer.key,
        validity=Validity.for_days(validity_days),
        serial_number=serial_from_seed(f"leaf:{domain}:{issuer.name}"),
        extensions=extensions,
        is_ca=False,
        san_names=tuple(san_names),
    )
    return builder.build()


def _slug(text: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else "-" for ch in text).strip("-")


# ---------------------------------------------------------------------------
# The 2022 Web PKI hierarchy used by the population generator
# ---------------------------------------------------------------------------

@dataclass
class WebPkiHierarchy:
    """All roots, intermediates and deliverable chain profiles."""

    roots: Dict[str, CertificateAuthority] = field(default_factory=dict)
    intermediates: Dict[str, CertificateAuthority] = field(default_factory=dict)
    profiles: Dict[str, CAProfile] = field(default_factory=dict)

    def profile(self, label: str) -> CAProfile:
        return self.profiles[label]

    def profile_labels(self) -> List[str]:
        return list(self.profiles)


def build_hierarchy() -> WebPkiHierarchy:
    """Build the CA hierarchy and the named chain profiles used in the paper.

    Profile labels intentionally mirror the CA names in Figure 7 so the
    reproduction's figures can be read against the paper directly.
    """
    h = WebPkiHierarchy()

    # --- Roots -------------------------------------------------------------
    isrg_x1 = _make_root("ISRG Root X1", "Internet Security Research Group", "US", KeyAlgorithm.RSA_4096)
    isrg_x2 = _make_root("ISRG Root X2", "Internet Security Research Group", "US", KeyAlgorithm.ECDSA_P384)
    dst_x3 = _make_root("DST Root CA X3", "Digital Signature Trust Co.", "US", KeyAlgorithm.RSA_2048)
    gts_r1 = _make_root("GTS Root R1", "Google Trust Services LLC", "US", KeyAlgorithm.RSA_4096)
    baltimore = _make_root("Baltimore CyberTrust Root", "Baltimore", "IE", KeyAlgorithm.RSA_2048)
    usertrust = _make_root("USERTrust RSA Certification Authority", "The USERTRUST Network", "US", KeyAlgorithm.RSA_4096)
    comodo_root = _make_root("Comodo AAA Certificate Services", "Comodo CA Limited", "GB", KeyAlgorithm.RSA_2048)
    digicert_root = _make_root("DigiCert Global Root CA", "DigiCert Inc", "US", KeyAlgorithm.RSA_2048)
    globalsign_r3 = _make_root("GlobalSign Root CA - R3", "GlobalSign nv-sa", "BE", KeyAlgorithm.RSA_2048)
    godaddy_root = _make_root("Go Daddy Root Certificate Authority - G2", "GoDaddy.com, Inc.", "US", KeyAlgorithm.RSA_2048)
    amazon_root = _make_root("Amazon Root CA 1", "Amazon", "US", KeyAlgorithm.RSA_2048)
    starfield_root = _make_root("Starfield Services Root Certificate Authority - G2", "Starfield Technologies, Inc.", "US", KeyAlgorithm.RSA_2048)
    for root in (isrg_x1, isrg_x2, dst_x3, gts_r1, baltimore, usertrust, comodo_root,
                 digicert_root, globalsign_r3, godaddy_root, amazon_root, starfield_root):
        h.roots[root.name] = root

    # --- Intermediates -------------------------------------------------------
    le_r3 = _make_intermediate(isrg_x1, "R3", "Let's Encrypt", "US", KeyAlgorithm.RSA_2048)
    le_e1 = _make_intermediate(isrg_x2, "E1", "Let's Encrypt", "US", KeyAlgorithm.ECDSA_P384)
    gts_1c3 = _make_intermediate(gts_r1, "GTS CA 1C3", "Google Trust Services LLC", "US", KeyAlgorithm.RSA_2048)
    gts_1d4 = _make_intermediate(gts_r1, "GTS CA 1D4", "Google Trust Services LLC", "US", KeyAlgorithm.RSA_2048)
    gts_1p5 = _make_intermediate(gts_r1, "GTS CA 1P5", "Google Trust Services LLC", "US", KeyAlgorithm.RSA_2048)
    cloudflare_ecc = _make_intermediate(baltimore, "Cloudflare Inc ECC CA-3", "Cloudflare, Inc.", "US", KeyAlgorithm.ECDSA_P256)
    sectigo_dv = _make_intermediate(usertrust, "Sectigo RSA Domain Validation Secure Server CA", "Sectigo Limited", "GB", KeyAlgorithm.RSA_2048)
    sectigo_ecc = _make_intermediate(usertrust, "Sectigo ECC Domain Validation Secure Server CA", "Sectigo Limited", "GB", KeyAlgorithm.ECDSA_P256)
    cpanel = _make_intermediate(comodo_root, "cPanel, Inc. Certification Authority", "cPanel, Inc.", "US", KeyAlgorithm.RSA_2048)
    digicert_sha2 = _make_intermediate(digicert_root, "DigiCert SHA2 Secure Server CA", "DigiCert Inc", "US", KeyAlgorithm.RSA_2048)
    digicert_tls_rsa = _make_intermediate(digicert_root, "DigiCert TLS RSA SHA256 2020 CA1", "DigiCert Inc", "US", KeyAlgorithm.RSA_2048)
    globalsign_atlas = _make_intermediate(globalsign_r3, "GlobalSign Atlas R3 DV TLS CA H2 2021", "GlobalSign nv-sa", "BE", KeyAlgorithm.RSA_2048)
    godaddy_g2 = _make_intermediate(godaddy_root, "Go Daddy Secure Certificate Authority - G2", "GoDaddy.com, Inc.", "US", KeyAlgorithm.RSA_2048)
    amazon_rsa_m02 = _make_intermediate(amazon_root, "Amazon RSA 2048 M02", "Amazon", "US", KeyAlgorithm.RSA_2048)
    starfield_g2 = _make_intermediate(starfield_root, "Starfield Secure Certificate Authority - G2", "Starfield Technologies, Inc.", "US", KeyAlgorithm.RSA_2048)
    for ca in (le_r3, le_e1, gts_1c3, gts_1d4, gts_1p5, cloudflare_ecc, sectigo_dv,
               sectigo_ecc, cpanel, digicert_sha2, digicert_tls_rsa, globalsign_atlas,
               godaddy_g2, amazon_rsa_m02, starfield_g2):
        h.intermediates[ca.name] = ca

    # Cross-signed ISRG Root X1 (signed by DST Root CA X3), the chain-bloating
    # companion cert Let's Encrypt ships in its "long chain" default.
    isrg_x1_cross = _cross_sign(isrg_x1, dst_x3)
    # Amazon intermediates are cross-signed below Starfield G2 in the long chain.
    amazon_root_cross = _cross_sign(amazon_root, starfield_root)

    # --- Deliverable chain profiles (the Figure 7 rows) ----------------------
    def add(label: str, issuer: CertificateAuthority, delivered: Tuple[Certificate, ...],
            leaf_alg: KeyAlgorithm, includes_root: bool = False, cross: bool = False) -> None:
        h.profiles[label] = CAProfile(
            label=label,
            issuer=issuer,
            delivered_chain=delivered,
            leaf_key_algorithm=leaf_alg,
            includes_root=includes_root,
            includes_cross_signed=cross,
        )

    # QUIC-dominant profiles (Figure 7a)
    add("Let's Encrypt E1 (short)", le_e1, (le_e1.certificate,), KeyAlgorithm.ECDSA_P256)
    add("Let's Encrypt R3 (short)", le_r3, (le_r3.certificate,), KeyAlgorithm.RSA_2048)
    add("Let's Encrypt R3 + cross-signed X1", le_r3,
        (le_r3.certificate, isrg_x1_cross), KeyAlgorithm.RSA_2048, cross=True)
    add("Let's Encrypt R3 + root X1", le_r3,
        (le_r3.certificate, isrg_x1.certificate), KeyAlgorithm.ECDSA_P256, includes_root=True)
    add("Let's Encrypt E1 + X2", le_e1, (le_e1.certificate, isrg_x2.certificate),
        KeyAlgorithm.ECDSA_P256, includes_root=True)
    add("Google 1C3", gts_1c3, (gts_1c3.certificate, gts_r1.certificate),
        KeyAlgorithm.ECDSA_P256, includes_root=True)
    add("Google 1D4", gts_1d4, (gts_1d4.certificate, gts_r1.certificate),
        KeyAlgorithm.ECDSA_P256, includes_root=True)
    add("Google 1P5", gts_1p5, (gts_1p5.certificate, gts_r1.certificate),
        KeyAlgorithm.RSA_2048, includes_root=True)
    add("Cloudflare ECC CA-3", cloudflare_ecc, (cloudflare_ecc.certificate,), KeyAlgorithm.ECDSA_P256)
    add("Sectigo ECC DV", sectigo_ecc, (sectigo_ecc.certificate, usertrust.certificate),
        KeyAlgorithm.ECDSA_P256, includes_root=True)
    add("GlobalSign Atlas R3 DV", globalsign_atlas, (globalsign_atlas.certificate,), KeyAlgorithm.RSA_2048)
    add("cPanel / Comodo", cpanel, (cpanel.certificate, comodo_root.certificate),
        KeyAlgorithm.RSA_2048, includes_root=True)

    # HTTPS-only-dominant profiles (Figure 7b)
    add("Sectigo RSA DV / USERTRUST", sectigo_dv, (sectigo_dv.certificate, usertrust.certificate),
        KeyAlgorithm.RSA_2048, includes_root=True)
    add("DigiCert SHA2", digicert_sha2, (digicert_sha2.certificate,), KeyAlgorithm.RSA_2048)
    add("DigiCert SHA2 + root (Meta)", digicert_sha2,
        (digicert_sha2.certificate, digicert_root.certificate),
        KeyAlgorithm.ECDSA_P256, includes_root=True)
    add("DigiCert TLS RSA 2020", digicert_tls_rsa, (digicert_tls_rsa.certificate,), KeyAlgorithm.RSA_2048)
    add("GoDaddy G2", godaddy_g2, (godaddy_g2.certificate, godaddy_root.certificate),
        KeyAlgorithm.RSA_2048, includes_root=True)
    add("Amazon RSA 2048 M02 (long)", amazon_rsa_m02,
        (amazon_rsa_m02.certificate, amazon_root_cross, starfield_g2.certificate),
        KeyAlgorithm.RSA_2048, cross=True)
    add("Amazon RSA 2048 M02 (short)", amazon_rsa_m02, (amazon_rsa_m02.certificate,), KeyAlgorithm.RSA_2048)
    add("Starfield G2 + root", starfield_g2, (starfield_g2.certificate, starfield_root.certificate),
        KeyAlgorithm.RSA_2048, includes_root=True)

    # A long tail of smaller, regional CAs.  The paper's Figure 7(b) shows that
    # HTTPS-only services are far less consolidated than QUIC services (top-10
    # chains cover 72 % vs 96.5 %); these profiles provide that diversity.
    parent_roots = (usertrust, comodo_root, digicert_root, globalsign_r3, godaddy_root, baltimore)
    for index in range(1, REGIONAL_CA_COUNT + 1):
        parent = parent_roots[index % len(parent_roots)]
        regional = _make_intermediate(
            parent,
            f"Regional DV CA R{index}",
            f"Regional Trust Services {index}",
            "US" if index % 2 else "DE",
            KeyAlgorithm.RSA_2048,
        )
        h.intermediates[regional.name] = regional
        if index % 2 == 0:
            delivered = (regional.certificate, parent.certificate)
            add(f"Regional DV #{index}", regional, delivered, KeyAlgorithm.RSA_2048,
                includes_root=True)
        else:
            add(f"Regional DV #{index}", regional, (regional.certificate,), KeyAlgorithm.RSA_2048)

    return h


#: Number of long-tail regional CA profiles generated by :func:`build_hierarchy`.
REGIONAL_CA_COUNT = 40

#: Profile labels of the regional long-tail CAs (for archetype pools).
def regional_profile_labels() -> List[str]:
    return [f"Regional DV #{index}" for index in range(1, REGIONAL_CA_COUNT + 1)]


_HIERARCHY_CACHE: Optional[WebPkiHierarchy] = None


def default_hierarchy() -> WebPkiHierarchy:
    """A process-wide cached hierarchy (it is deterministic and immutable)."""
    global _HIERARCHY_CACHE
    if _HIERARCHY_CACHE is None:
        _HIERARCHY_CACHE = build_hierarchy()
    return _HIERARCHY_CACHE
