"""Certificate chains as delivered by TLS servers.

A chain is the ordered list the server sends: leaf first, then intermediates
towards (but normally excluding) the trust anchor.  The paper analyses chain
sizes, depth, ordering mistakes, superfluous root inclusion and redundant
cross-signed certificates — all of which this module can represent and detect.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..caching import cached_property  # lock-free (see repro.caching)
from typing import Iterator, List, Optional, Sequence, Tuple

from .certificate import Certificate


class ChainOrderError(ValueError):
    """Raised when an operation requires a correctly ordered chain."""


def certificates_correctly_ordered(certificates: Sequence[Certificate]) -> bool:
    """True when each certificate is issued by the next one in the list.

    Module-level so the columnar scan backend can check the shared non-leaf
    suffix of a chain once per distinct parent tuple and reuse the verdict
    across every chain delivering it (the leaf link is checked separately).
    """
    for child, parent in zip(certificates, certificates[1:]):
        if child.issuer.encode() != parent.subject.encode():
            return False
    return True


def parent_chain_labels(non_leaf: Sequence[Certificate]) -> List[str]:
    """The Figure 7 labels of a chain's non-leaf certificates (leaf-to-root).

    Pure function of the non-leaf suffix — :meth:`CertificateChain.
    parent_chain_key` adds the leaf-issuer fallback for leaf-only chains.
    Extracting it lets the columnar backend compute the labels once per
    distinct parent tuple instead of once per chain.
    """
    labels: List[str] = []
    for index, cert in enumerate(non_leaf):
        label = cert.subject.common_name or cert.subject.organization or "unknown"
        issued_by_later = any(
            cert.issuer.encode() == later.subject.encode() for later in non_leaf[index + 1 :]
        )
        if not cert.is_self_signed and not issued_by_later and index == len(non_leaf) - 1:
            issuer_label = cert.issuer.common_name or cert.issuer.organization or "unknown"
            if issuer_label != label and index > 0:
                label = f"{label} (cross-signed)"
        labels.append(label)
    return labels


@dataclass(frozen=True)
class CertificateChain:
    """The certificate list a server delivers during the handshake."""

    certificates: Tuple[Certificate, ...]

    def __post_init__(self) -> None:
        if not self.certificates:
            raise ValueError("a certificate chain must contain at least one certificate")

    # -- structure ---------------------------------------------------------

    @property
    def leaf(self) -> Certificate:
        return self.certificates[0]

    @property
    def intermediates(self) -> Tuple[Certificate, ...]:
        return self.certificates[1:]

    @property
    def non_leaf_certificates(self) -> Tuple[Certificate, ...]:
        return self.certificates[1:]

    @property
    def depth(self) -> int:
        """Number of certificates delivered."""
        return len(self.certificates)

    def __iter__(self) -> Iterator[Certificate]:
        return iter(self.certificates)

    def __len__(self) -> int:
        return len(self.certificates)

    # -- sizes ---------------------------------------------------------------

    @cached_property
    def total_size(self) -> int:
        """Sum of DER sizes of all delivered certificates."""
        return sum(cert.size for cert in self.certificates)

    @cached_property
    def fingerprint(self) -> str:
        """SHA-256 over the concatenated DER encodings (cached; chains are immutable)."""
        import hashlib

        digest = hashlib.sha256()
        for cert in self.certificates:
            digest.update(cert.der)
        return digest.hexdigest()

    @property
    def leaf_size(self) -> int:
        return self.leaf.size

    @property
    def parent_chain_size(self) -> int:
        """Bytes of everything except the leaf (the paper's white boxes, Fig. 7)."""
        return self.total_size - self.leaf.size

    def exceeds(self, byte_limit: int) -> bool:
        return self.total_size > byte_limit

    # -- hygiene checks (paper §4.2) ----------------------------------------

    def is_correctly_ordered(self) -> bool:
        """True when each certificate is issued by the next one in the list."""
        return certificates_correctly_ordered(self.certificates)

    def includes_trust_anchor(self) -> bool:
        """True when the server superfluously ships a self-signed root."""
        return any(cert.is_self_signed for cert in self.certificates)

    def includes_cross_signed(self, trust_anchor_names: Optional[Sequence[str]] = None) -> bool:
        """True when a delivered CA cert is a cross-signed variant of a trust anchor.

        A cross-signed certificate carries the *subject* of a root that clients
        already trust (e.g. ISRG Root X1) but is signed by a different, legacy
        root — shipping it is superfluous for modern clients.  Detection
        therefore needs to know which subjects are trust anchors; by default
        the root names of :func:`repro.x509.ca.default_hierarchy` are used.
        """
        if trust_anchor_names is None:
            from .ca import default_hierarchy  # local import to avoid a cycle

            trust_anchor_names = tuple(default_hierarchy().roots)
        anchors = {name for name in trust_anchor_names}
        for cert in self.certificates[1:]:
            if cert.is_self_signed or not cert.is_ca:
                continue
            subject_name = cert.subject.common_name or cert.subject.organization
            if subject_name in anchors:
                return True
        return False

    # -- identity of the parent chain (for Figure 7 grouping) -----------------

    def parent_chain_key(self) -> Tuple[str, ...]:
        """A hashable identity of the non-leaf chain: subject CNs from leaf up.

        A cross-signed certificate (same subject as a root, but not
        self-signed and not issued by anything else in the chain) is labelled
        explicitly so that e.g. the Let's Encrypt chain shipping the
        cross-signed ISRG Root X1 groups separately from the one shipping the
        self-signed root — the paper's Figure 7 distinguishes these rows.
        """
        labels = parent_chain_labels(self.certificates[1:])
        if not labels:
            labels.append(self.leaf.issuer.common_name or "unknown")
        return tuple(labels)

    def parent_chain_label(self) -> str:
        return " / ".join(self.parent_chain_key())

    # -- convenience ----------------------------------------------------------

    def sizes_by_depth(self) -> Tuple[int, ...]:
        return tuple(cert.size for cert in self.certificates)

    def with_leaf(self, leaf: Certificate) -> "CertificateChain":
        """Return a new chain with a different leaf but the same parents."""
        return CertificateChain((leaf,) + self.certificates[1:])


def validate_order(chain: Sequence[Certificate]) -> None:
    """Raise :class:`ChainOrderError` if the chain is not leaf-to-root ordered."""
    wrapped = CertificateChain(tuple(chain))
    if not wrapped.is_correctly_ordered():
        raise ChainOrderError("certificate chain is not ordered leaf to root")


def chain_fingerprint(chain: CertificateChain) -> str:
    """Stable identity for deduplicating identical delivered chains."""
    return chain.fingerprint


def find_common_parent_chains(
    chains: Sequence[CertificateChain], top_n: int = 10
) -> List[Tuple[Tuple[str, ...], int]]:
    """Group chains by their parent-chain identity and return the top N.

    This is the aggregation behind the paper's Figure 7.
    Only correctly ordered chains participate, mirroring the paper.
    """
    from collections import Counter

    counter: Counter = Counter()
    for chain in chains:
        if chain.is_correctly_ordered():
            counter[chain.parent_chain_key()] += 1
    return counter.most_common(top_n)
