"""Server behaviour profiles.

The paper attributes the observed handshake classes not only to certificate
sizes but to *implementation behaviour*: Cloudflare's missing packet
coalescence and padding accounting, Meta's (mvfst) unbounded retransmissions to
unvalidated clients, and the rare always-on Retry deployments.  A
:class:`ServerBehaviorProfile` captures those degrees of freedom so the
simulated servers reproduce each behaviour from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from functools import lru_cache
from typing import Dict, Tuple

from ..tls.cert_compression import CertificateCompressionAlgorithm


class CoalescenceMode(Enum):
    """How a server maps its first-flight packets onto UDP datagrams."""

    #: Initial (ACK + ServerHello) and Handshake packets coalesced into MTU-sized datagrams.
    FULL = "full"
    #: Every packet in its own datagram, Initial datagrams padded.
    NONE = "none"
    #: Cloudflare-like: the Initial ACK and the Initial carrying the ServerHello
    #: are sent in two separate, individually padded datagrams; no coalescing
    #: of Initial and Handshake data either.
    SPLIT_INITIAL_ACK = "split-initial-ack"


class RetryPolicy(Enum):
    """Whether the server validates addresses with Retry before answering."""

    NEVER = "never"
    ALWAYS = "always"


@dataclass(frozen=True)
class ServerBehaviorProfile:
    """Tunable server behaviour used by :class:`repro.quic.server.QuicServer`."""

    name: str
    coalescence: CoalescenceMode = CoalescenceMode.FULL
    retry_policy: RetryPolicy = RetryPolicy.NEVER
    #: Pad every datagram that carries an Initial packet to the minimum size,
    #: even if it is not ack-eliciting (RFC only requires padding for
    #: ack-eliciting Initials; padding everything wastes amplification budget).
    pad_all_initial_datagrams: bool = False
    #: Whether padding bytes are charged against the anti-amplification limit.
    #: RFC 9000 requires yes; Cloudflare's stack behaves as if no.
    count_padding_against_limit: bool = True
    #: Whether the limit is enforced at all when building the first flight for
    #: an unvalidated address.  mvfst deployments before October 2022 did not.
    enforce_amplification_limit: bool = True
    #: Whether the limit is also enforced when *retransmitting* unacknowledged
    #: handshake data to a still-unvalidated address.  Several hypergiant
    #: stacks enforce it on the first flight but keep retransmitting beyond it
    #: (the backscatter amplification the paper measures in Figure 9).
    enforce_limit_on_retransmissions: bool = True
    #: How many times the server retransmits its unacknowledged first flight to
    #: a silent, unvalidated client (loss recovery persistence).
    unvalidated_retransmission_rounds: int = 1
    #: RFC 8879 algorithms the server supports.
    compression_algorithms: Tuple[CertificateCompressionAlgorithm, ...] = ()
    #: Server's UDP MTU towards clients.
    mtu: int = 1472

    def supports_compression(self, algorithm: CertificateCompressionAlgorithm) -> bool:
        return algorithm in self.compression_algorithms

    def with_compression(
        self, *algorithms: CertificateCompressionAlgorithm
    ) -> "ServerBehaviorProfile":
        return replace(self, compression_algorithms=tuple(algorithms))

    def describe(self) -> str:
        """One-line description for reports."""
        parts = [
            f"coalescence={self.coalescence.value}",
            f"retry={self.retry_policy.value}",
            f"limit={'on' if self.enforce_amplification_limit else 'off'}",
            f"padding-counted={'yes' if self.count_padding_against_limit else 'no'}",
            f"resend-rounds={self.unvalidated_retransmission_rounds}",
        ]
        if self.compression_algorithms:
            parts.append("compression=" + "+".join(a.label for a in self.compression_algorithms))
        return f"{self.name}: " + ", ".join(parts)


#: RFC-compliant stack (e.g. quiche/quic-go style behaviour): coalescence,
#: padding counted, one retransmission attempt bounded by the limit.  Most
#: such stacks link a TLS library with brotli certificate compression.
RFC_COMPLIANT = ServerBehaviorProfile(
    name="rfc-compliant",
    coalescence=CoalescenceMode.FULL,
    count_padding_against_limit=True,
    enforce_amplification_limit=True,
    enforce_limit_on_retransmissions=True,
    unvalidated_retransmission_rounds=1,
    compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
)

#: The same stack built against a TLS library without RFC 8879 support
#: (e.g. OpenSSL-based builds); a small minority of deployments.
RFC_COMPLIANT_NO_COMPRESSION = ServerBehaviorProfile(
    name="rfc-compliant-no-compression",
    coalescence=CoalescenceMode.FULL,
    count_padding_against_limit=True,
    enforce_amplification_limit=True,
    enforce_limit_on_retransmissions=True,
    unvalidated_retransmission_rounds=1,
)

#: Cloudflare-like stack: no coalescence, the Initial ACK and the Initial
#: carrying the ServerHello go into two separately padded datagrams whose
#: padding is not counted against the limit, which yields 1-RTT handshakes
#: that exceed 3× ("Amplification" class).  Supports brotli compression.
CLOUDFLARE_LIKE = ServerBehaviorProfile(
    name="cloudflare-like",
    coalescence=CoalescenceMode.SPLIT_INITIAL_ACK,
    pad_all_initial_datagrams=True,
    count_padding_against_limit=False,
    enforce_amplification_limit=True,
    enforce_limit_on_retransmissions=False,
    unvalidated_retransmission_rounds=1,
    compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
)

#: Meta/mvfst-like stack before the October 2022 fix: retransmits its full
#: flight many times to unvalidated clients without applying the limit.
MVFST_LIKE = ServerBehaviorProfile(
    name="mvfst-like",
    coalescence=CoalescenceMode.FULL,
    count_padding_against_limit=True,
    enforce_amplification_limit=False,
    enforce_limit_on_retransmissions=False,
    unvalidated_retransmission_rounds=5,
    compression_algorithms=(
        CertificateCompressionAlgorithm.ZLIB,
        CertificateCompressionAlgorithm.BROTLI,
        CertificateCompressionAlgorithm.ZSTD,
    ),
)

#: Meta/mvfst-like stack after responsible disclosure: no more blind
#: retransmission storms, but the first flight still slightly exceeds the
#: limit (mean ≈5×) because the limit is not enforced on the initial flight.
MVFST_PATCHED = ServerBehaviorProfile(
    name="mvfst-patched",
    coalescence=CoalescenceMode.FULL,
    count_padding_against_limit=True,
    enforce_amplification_limit=False,
    enforce_limit_on_retransmissions=True,
    unvalidated_retransmission_rounds=0,
    compression_algorithms=(
        CertificateCompressionAlgorithm.ZLIB,
        CertificateCompressionAlgorithm.BROTLI,
        CertificateCompressionAlgorithm.ZSTD,
    ),
)

#: Always-on Retry (a priori DoS protection); rare in the wild (~0.07 %).
RETRY_ALWAYS = ServerBehaviorProfile(
    name="retry-always",
    coalescence=CoalescenceMode.FULL,
    retry_policy=RetryPolicy.ALWAYS,
    unvalidated_retransmission_rounds=1,
)

#: Google-like stack: compliant coalescence and first-flight accounting, brotli
#: support, but persistent retransmission towards unvalidated clients that is
#: not bounded by the limit (amplification up to ≈10× in backscatter).
GOOGLE_LIKE = ServerBehaviorProfile(
    name="google-like",
    coalescence=CoalescenceMode.FULL,
    count_padding_against_limit=True,
    enforce_amplification_limit=True,
    enforce_limit_on_retransmissions=False,
    unvalidated_retransmission_rounds=2,
    compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
)


@lru_cache(maxsize=None)
def with_universal_compression(profile: ServerBehaviorProfile) -> ServerBehaviorProfile:
    """The same stack linked against an RFC 8879-capable TLS library.

    The "universal certificate compression" counterfactual of the scenario
    layer: profiles that already negotiate compression are returned unchanged
    (identity preserved), everything else gains brotli.  Cached so all
    deployments of a scenario share one substituted profile instance — the
    flight-plan cache then keys them identically.
    """
    if profile.compression_algorithms:
        return profile
    return profile.with_compression(CertificateCompressionAlgorithm.BROTLI)


@lru_cache(maxsize=None)
def without_compression(profile: ServerBehaviorProfile) -> ServerBehaviorProfile:
    """The same stack with certificate compression unlinked.

    The non-adopter half of the ``compression_adoption`` counterfactual:
    profiles that never negotiated compression are returned unchanged
    (identity preserved), everything else loses its algorithms.  Cached for
    the same flight-plan-identity reason as :func:`with_universal_compression`.
    """
    if not profile.compression_algorithms:
        return profile
    return profile.with_compression(())


BUILTIN_PROFILES: Dict[str, ServerBehaviorProfile] = {
    profile.name: profile
    for profile in (
        RFC_COMPLIANT,
        RFC_COMPLIANT_NO_COMPRESSION,
        CLOUDFLARE_LIKE,
        MVFST_LIKE,
        MVFST_PATCHED,
        RETRY_ALWAYS,
        GOOGLE_LIKE,
    )
}
