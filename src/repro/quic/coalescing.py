"""Packet coalescing into UDP datagrams (RFC 9000 §12.2).

A sender may place several QUIC packets with different encryption levels into
one UDP datagram.  Whether a server does this is central to the paper: missing
coalescence forces separate datagrams whose Initial packets each need padding,
which wastes anti-amplification budget (the Cloudflare finding, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..caching import cached_property  # lock-free (see repro.caching)
from typing import Iterable, List, Sequence, Tuple

from .packet import PacketType, QuicPacket


@dataclass(frozen=True)
class UdpDatagram:
    """One UDP datagram carrying one or more coalesced QUIC packets.

    Datagrams are immutable, so the per-datagram aggregates are computed once
    and cached on the instance.
    """

    packets: Tuple[QuicPacket, ...]

    def __post_init__(self) -> None:
        if not self.packets:
            raise ValueError("a datagram must carry at least one packet")

    @cached_property
    def size(self) -> int:
        """UDP payload size in bytes."""
        return sum(packet.size for packet in self.packets)

    @property
    def packet_types(self) -> Tuple[PacketType, ...]:
        return tuple(packet.packet_type for packet in self.packets)

    @property
    def is_coalesced(self) -> bool:
        return len(self.packets) > 1

    @cached_property
    def padding_bytes(self) -> int:
        return sum(packet.padding_bytes for packet in self.packets)

    @cached_property
    def contains_initial(self) -> bool:
        return any(p.packet_type is PacketType.INITIAL for p in self.packets)

    @cached_property
    def is_ack_eliciting(self) -> bool:
        return any(p.is_ack_eliciting for p in self.packets)

    def encode(self) -> bytes:
        return b"".join(packet.encode() for packet in self.packets)


def coalesce(packets: Sequence[QuicPacket], mtu: int = 1472) -> UdpDatagram:
    """Coalesce packets into a single datagram, checking the MTU.

    QUIC forbids IP fragmentation, so exceeding the MTU is an error the caller
    must handle by splitting (see :func:`split_into_datagrams`).
    """
    datagram = UdpDatagram(tuple(packets))
    if datagram.size > mtu:
        raise ValueError(f"coalesced datagram of {datagram.size} bytes exceeds MTU {mtu}")
    return datagram


def split_into_datagrams(
    packets: Iterable[QuicPacket],
    mtu: int = 1472,
    coalescing_enabled: bool = True,
) -> List[UdpDatagram]:
    """Greedily pack packets into datagrams no larger than ``mtu``.

    With ``coalescing_enabled=False`` every packet travels in its own datagram,
    reproducing the behaviour of server stacks without coalescing support.
    """
    datagrams: List[UdpDatagram] = []
    current: List[QuicPacket] = []
    current_size = 0
    for packet in packets:
        if packet.size > mtu:
            raise ValueError(f"single packet of {packet.size} bytes exceeds MTU {mtu}")
        if not coalescing_enabled:
            datagrams.append(UdpDatagram((packet,)))
            continue
        if current and current_size + packet.size > mtu:
            datagrams.append(UdpDatagram(tuple(current)))
            current = []
            current_size = 0
        current.append(packet)
        current_size += packet.size
    if current:
        datagrams.append(UdpDatagram(tuple(current)))
    return datagrams
