"""QUIC server handshake engine.

Given a certificate chain, a client Initial and a
:class:`~repro.quic.profiles.ServerBehaviorProfile`, the server builds its
first flight (ACK, ServerHello, EncryptedExtensions, Certificate,
CertificateVerify, Finished), maps it onto UDP datagrams according to the
profile's coalescing behaviour, and applies the profile's anti-amplification
accounting to decide how much of the flight leaves before the client's address
is validated.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..tls.handshake_messages import ClientHello, ServerFirstFlight, build_server_first_flight
from ..x509.chain import CertificateChain
from .anti_amplification import AmplificationTracker
from .coalescing import UdpDatagram, split_into_datagrams
from .connection_id import ConnectionId
from .frames import AckFrame, CryptoFrame, split_crypto_stream
from .packet import (
    AEAD_TAG_SIZE,
    MIN_CLIENT_INITIAL_SIZE,
    HandshakePacket,
    InitialPacket,
    PacketType,
    QuicPacket,
    RetryPacket,
)
from .profiles import CoalescenceMode, RetryPolicy, ServerBehaviorProfile


@dataclass(frozen=True)
class FlightCacheInfo:
    """Counters of a :class:`FlightPlanCache`, ``functools.lru_cache`` style."""

    hits: int
    misses: int
    currsize: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FlightPlanCache:
    """LRU memo of built server first flights.

    Building a flight is the expensive part of a handshake simulation: the TLS
    messages (including a real DEFLATE pass for RFC 8879 compression), the
    packetisation and the datagram padding.  All of it is a pure function of
    ``(domain, behavior profile, chain fingerprint, client compression offer)``
    — the client's Initial size only moves the first-RTT/deferred split, which
    is recomputed per call so one cached flight serves every Initial size of
    the sweep.  The domain is part of the key because connection IDs (and the
    Retry token) are derived from it, keeping cached plans byte-identical to
    freshly built ones.

    The default bound is sized for the reuse pattern, not the population: the
    Initial-size sweep revisits a sampled working set (2,000 targets by
    default), so a few thousand resident flights capture all the locality
    while keeping worst-case memory in the tens of MB even for million-domain
    campaigns (entries are multi-KB flight plans).
    """

    def __init__(self, maxsize: int = 8_192) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, Tuple[ServerFirstFlight, Tuple[UdpDatagram, ...]]]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0

    def get_or_build(
        self,
        key: tuple,
        build: Callable[[], Tuple[ServerFirstFlight, Tuple[UdpDatagram, ...]]],
    ) -> Tuple[ServerFirstFlight, Tuple[UdpDatagram, ...]]:
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            self._entries.move_to_end(key)
            return entry
        self._misses += 1
        entry = build()
        self._entries[key] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def cache_info(self) -> FlightCacheInfo:
        return FlightCacheInfo(
            hits=self._hits,
            misses=self._misses,
            currsize=len(self._entries),
            maxsize=self.maxsize,
        )

    def clear(self) -> None:
        self._entries.clear()
        self._hits = 0
        self._misses = 0


#: Process-wide cache shared by all :class:`QuicServer` instances (servers are
#: created per simulated handshake, so the cache must outlive them).
_SHARED_FLIGHT_CACHE = FlightPlanCache()


def flight_plan_cache_info() -> FlightCacheInfo:
    """Counters of the shared flight-plan cache."""
    return _SHARED_FLIGHT_CACHE.cache_info()


def reset_flight_plan_cache() -> None:
    """Drop all shared cache entries and reset the counters."""
    _SHARED_FLIGHT_CACHE.clear()


@dataclass(frozen=True)
class ServerFlightPlan:
    """Everything the server would transmit, split around address validation."""

    #: A Retry datagram, if the profile demands address validation first.
    retry_datagram: Optional[UdpDatagram]
    #: Datagrams sent in the first RTT (before the client's address is validated).
    first_rtt_datagrams: Tuple[UdpDatagram, ...]
    #: Datagrams that had to wait for address validation (second RTT).
    deferred_datagrams: Tuple[UdpDatagram, ...]
    #: The TLS flight the datagrams carry.
    tls_flight: ServerFirstFlight
    #: The tracker after the first RTT, using the profile's own accounting.
    tracker: AmplificationTracker

    # -- byte accounting -------------------------------------------------------

    @property
    def first_rtt_bytes(self) -> int:
        return sum(d.size for d in self.first_rtt_datagrams)

    @property
    def deferred_bytes(self) -> int:
        return sum(d.size for d in self.deferred_datagrams)

    @property
    def total_bytes(self) -> int:
        retry = self.retry_datagram.size if self.retry_datagram else 0
        return retry + self.first_rtt_bytes + self.deferred_bytes

    @property
    def padding_bytes_first_rtt(self) -> int:
        return sum(d.padding_bytes for d in self.first_rtt_datagrams)

    @property
    def tls_bytes_total(self) -> int:
        return self.tls_flight.total_crypto_size

    @property
    def quic_overhead_total(self) -> int:
        """Header, padding and AEAD bytes across the whole delivered flight."""
        return self.first_rtt_bytes + self.deferred_bytes - self.tls_bytes_total

    @property
    def requires_additional_rtt(self) -> bool:
        return bool(self.deferred_datagrams)

    @property
    def uses_retry(self) -> bool:
        return self.retry_datagram is not None


class QuicServer:
    """A QUIC server for one service (one certificate chain, one profile)."""

    def __init__(
        self,
        domain: str,
        chain: CertificateChain,
        profile: ServerBehaviorProfile,
        flight_cache: Optional[FlightPlanCache] = None,
    ) -> None:
        self.domain = domain
        self.chain = chain
        self.profile = profile
        self._scid = ConnectionId.generate(f"scid:server:{domain}", 8)
        self._flight_cache = _SHARED_FLIGHT_CACHE if flight_cache is None else flight_cache

    # -- public API ------------------------------------------------------------

    def respond_to_initial(
        self,
        client_hello: ClientHello,
        client_initial_size: int,
        client_sent_retry_token: bool = False,
    ) -> ServerFlightPlan:
        """Build the server's response to a client Initial datagram.

        ``client_initial_size`` is the UDP payload size of the client's first
        datagram: it seeds the anti-amplification budget.  When the profile
        requires Retry and the client has not echoed a token yet, the response
        is just the Retry packet.
        """
        tracker = AmplificationTracker(
            exclude_padding=not self.profile.count_padding_against_limit,
            ignore_limit=not self.profile.enforce_amplification_limit,
        )
        tracker.on_datagram_received(client_initial_size)

        if self.profile.retry_policy is RetryPolicy.ALWAYS and not client_sent_retry_token:
            retry = self._build_retry()
            tracker.on_datagram_sent(retry.size)
            flight, _ = self._cached_flight(client_hello)
            return ServerFlightPlan(
                retry_datagram=retry,
                first_rtt_datagrams=(),
                deferred_datagrams=(),
                tls_flight=flight,
                tracker=tracker,
            )
        if client_sent_retry_token:
            # A valid Retry token validates the address immediately.
            tracker.on_address_validated()

        flight, datagrams = self._cached_flight(client_hello)
        first_rtt, deferred = self._apply_amplification_limit(datagrams, tracker)
        return ServerFlightPlan(
            retry_datagram=None,
            first_rtt_datagrams=tuple(first_rtt),
            deferred_datagrams=tuple(deferred),
            tls_flight=flight,
            tracker=tracker,
        )

    def unvalidated_transmission(
        self,
        client_hello: ClientHello,
        client_initial_size: int,
    ) -> Tuple[ServerFlightPlan, int]:
        """Total bytes sent to a client that never answers (spoofed address).

        Returns the flight plan of the first transmission and the total number
        of bytes sent including all retransmission rounds the profile performs
        while the address stays unvalidated.
        """
        plan, schedule = self.unvalidated_transmission_schedule(client_hello, client_initial_size)
        return plan, sum(size for _, size in schedule)

    def unvalidated_transmission_schedule(
        self,
        client_hello: ClientHello,
        client_initial_size: int,
        probe_timeout_base_s: float = 1.0,
    ) -> Tuple[ServerFlightPlan, List[Tuple[float, int]]]:
        """Per-datagram timeline of bytes sent to a silent, unvalidated client.

        Returns the first-flight plan plus a list of ``(time_offset_seconds,
        datagram_size)`` entries: the first flight at t=0 and each
        retransmission round after an exponentially backed-off probe timeout,
        mirroring RFC 9002 loss recovery.  Telescopes use the timeline to
        reconstruct backscatter sessions.
        """
        plan = self.respond_to_initial(client_hello, client_initial_size)
        tracker = plan.tracker
        schedule: List[Tuple[float, int]] = []
        if plan.retry_datagram is not None:
            schedule.append((0.0, plan.retry_datagram.size))
        for datagram in plan.first_rtt_datagrams:
            schedule.append((0.0, datagram.size))
        retransmittable = [d for d in plan.first_rtt_datagrams if d.is_ack_eliciting]
        for round_index in range(self.profile.unvalidated_retransmission_rounds):
            offset = probe_timeout_base_s * ((2 ** (round_index + 1)) - 1)
            for datagram in retransmittable:
                if (
                    self.profile.enforce_limit_on_retransmissions
                    and not tracker.can_send(datagram.size)
                ):
                    continue
                padding_only = datagram.padding_bytes > 0 and not datagram.is_ack_eliciting
                tracker.on_datagram_sent(datagram.size, padding_only=padding_only)
                schedule.append((offset, datagram.size))
        return plan, schedule

    # -- internals --------------------------------------------------------------

    def _cached_flight(
        self, client_hello: ClientHello
    ) -> Tuple[ServerFirstFlight, Tuple[UdpDatagram, ...]]:
        """The TLS flight and padded datagrams, memoized in the flight cache.

        The returned objects are immutable and shared between plans; per-call
        state (the amplification tracker and the first-RTT/deferred split) is
        always computed fresh.
        """
        key = (
            self.domain,
            self.profile,
            self.chain.fingerprint,
            client_hello.compression_algorithms,
        )

        def build() -> Tuple[ServerFirstFlight, Tuple[UdpDatagram, ...]]:
            flight = build_server_first_flight(
                self.chain,
                client_hello,
                server_compression_algorithms=self.profile.compression_algorithms,
            )
            return flight, tuple(self._build_datagrams(client_hello, flight))

        return self._flight_cache.get_or_build(key, build)

    def _build_retry(self) -> UdpDatagram:
        token = b"retry-token:" + self.domain.encode("ascii")[:32]
        packet = RetryPacket(
            destination_cid=ConnectionId.generate(f"scid:client:{self.domain}", 8),
            source_cid=self._scid,
            token=token,
        )
        return UdpDatagram((packet,))

    def _client_dcid(self) -> ConnectionId:
        return ConnectionId.generate(f"scid:client:{self.domain}", 8)

    def _build_packets(self, flight: ServerFirstFlight) -> Tuple[List[QuicPacket], List[QuicPacket]]:
        """Build Initial-level and Handshake-level packets for the flight."""
        dcid = self._client_dcid()
        initial_packets: List[QuicPacket] = []
        handshake_packets: List[QuicPacket] = []

        server_hello_frame = CryptoFrame(offset=0, data=flight.server_hello.encode())
        if self.profile.coalescence is CoalescenceMode.SPLIT_INITIAL_ACK:
            # Datagram 1: Initial carrying only the ACK.  Datagram 2: Initial
            # carrying the ServerHello.  Both will be padded at datagram level.
            initial_packets.append(
                InitialPacket(dcid, self._scid, packet_number=0, frames=(AckFrame(0),))
            )
            initial_packets.append(
                InitialPacket(dcid, self._scid, packet_number=1, frames=(server_hello_frame,))
            )
        else:
            initial_packets.append(
                InitialPacket(
                    dcid, self._scid, packet_number=0, frames=(AckFrame(0), server_hello_frame)
                )
            )

        handshake_stream = (
            flight.encrypted_extensions.encode()
            + flight.certificate.encode()
            + flight.certificate_verify.encode()
            + flight.finished.encode()
        )
        # Leave room for header (~30 bytes) and AEAD tag in each Handshake packet.
        per_packet_overhead = 40 + AEAD_TAG_SIZE
        full_chunk = self.profile.mtu - per_packet_overhead
        chunks: List[bytes] = []
        if self.profile.coalescence is CoalescenceMode.FULL:
            # A coalescing server fills the datagram that carries the Initial
            # with Handshake data instead of padding it: size the first chunk
            # to the space remaining next to the Initial packet.
            space_next_to_initial = self.profile.mtu - initial_packets[-1].size - per_packet_overhead
            if space_next_to_initial > 64:
                first = handshake_stream[:space_next_to_initial]
                if first:
                    chunks.append(first)
                handshake_stream = handshake_stream[len(first):]
        offset = 0
        while handshake_stream:
            chunks.append(handshake_stream[:full_chunk])
            handshake_stream = handshake_stream[full_chunk:]
        if not chunks:
            chunks.append(b"")
        for index, chunk in enumerate(chunks):
            handshake_packets.append(
                HandshakePacket(
                    dcid, self._scid, packet_number=index,
                    frames=(CryptoFrame(offset=offset, data=chunk),),
                )
            )
            offset += len(chunk)
        return initial_packets, handshake_packets

    def _build_datagrams(
        self, client_hello: ClientHello, flight: ServerFirstFlight
    ) -> List[UdpDatagram]:
        initial_packets, handshake_packets = self._build_packets(flight)

        if self.profile.coalescence is CoalescenceMode.FULL:
            datagrams = split_into_datagrams(
                initial_packets + handshake_packets, mtu=self.profile.mtu, coalescing_enabled=True
            )
        else:
            datagrams = split_into_datagrams(
                initial_packets + handshake_packets, mtu=self.profile.mtu, coalescing_enabled=False
            )

        padded: List[UdpDatagram] = []
        for datagram in datagrams:
            padded.append(self._pad_datagram(datagram))
        return padded

    def _pad_datagram(self, datagram: UdpDatagram) -> UdpDatagram:
        """Pad datagrams containing Initial packets to the minimum size.

        RFC 9000 §14.1 requires padding for datagrams with ack-eliciting
        Initial packets; profiles with ``pad_all_initial_datagrams`` pad every
        Initial datagram (the superfluous padding the paper measured).
        """
        if not datagram.contains_initial or datagram.size >= MIN_CLIENT_INITIAL_SIZE:
            return datagram
        must_pad = datagram.is_ack_eliciting or self.profile.pad_all_initial_datagrams
        if not must_pad:
            return datagram
        deficit = MIN_CLIENT_INITIAL_SIZE - datagram.size
        packets = list(datagram.packets)
        packets[-1] = packets[-1].with_padding_to(packets[-1].size + deficit)
        return UdpDatagram(tuple(packets))

    def _apply_amplification_limit(
        self, datagrams: Sequence[UdpDatagram], tracker: AmplificationTracker
    ) -> Tuple[List[UdpDatagram], List[UdpDatagram]]:
        """Send datagrams in order until the profile's own accounting blocks."""
        first_rtt: List[UdpDatagram] = []
        deferred: List[UdpDatagram] = []
        blocked = False
        for datagram in datagrams:
            padding_only = not datagram.is_ack_eliciting and datagram.padding_bytes > 0
            allowed = tracker.can_send(datagram.size) or (
                not tracker.address_validated
                and not self.profile.enforce_amplification_limit
            )
            if not blocked and (allowed or self._counts_as_free(datagram, padding_only)):
                tracker.on_datagram_sent(datagram.size, padding_only=padding_only)
                first_rtt.append(datagram)
            else:
                blocked = True
                deferred.append(datagram)
        return first_rtt, deferred

    def _counts_as_free(self, datagram: UdpDatagram, padding_only: bool) -> bool:
        """Cloudflare-style accounting: padding-only datagrams bypass the check."""
        return not self.profile.count_padding_against_limit and padding_only
