"""QUIC packet encodings (RFC 9000 §17).

Packets are modelled at byte precision: long header fields, varint lengths,
frame payloads and the 16-byte AEAD expansion are all accounted for, so a
padded client Initial of "1200 bytes" really is 1200 bytes of UDP payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from ..caching import cached_property  # lock-free (see repro.caching)
from typing import Tuple

from .connection_id import ConnectionId
from .frames import Frame, PaddingFrame
from .varint import encode_varint, varint_size

#: QUIC version 1.
QUIC_VERSION_1 = 0x00000001

#: AEAD expansion added to every protected packet (AES-GCM / ChaCha20 tag).
AEAD_TAG_SIZE = 16

#: Minimum UDP payload a client Initial must be padded to (RFC 9000 §14.1).
MIN_CLIENT_INITIAL_SIZE = 1200


class PacketType(Enum):
    """The packet types that occur during connection establishment."""

    INITIAL = "initial"
    HANDSHAKE = "handshake"
    RETRY = "retry"
    ONE_RTT = "1rtt"

    @property
    def long_header(self) -> bool:
        return self is not PacketType.ONE_RTT


@dataclass(frozen=True)
class QuicPacket:
    """A single QUIC packet before coalescing into a UDP datagram."""

    packet_type: PacketType
    destination_cid: ConnectionId
    source_cid: ConnectionId
    packet_number: int
    frames: Tuple[Frame, ...] = ()
    token: bytes = b""

    # -- size computation -----------------------------------------------------
    #
    # Packets are immutable, so every size is computed once and cached on the
    # instance; the arithmetic never builds the encoded byte strings.

    @cached_property
    def payload_size(self) -> int:
        """Sum of encoded frame sizes (before AEAD expansion)."""
        return sum(frame.size for frame in self.frames)

    @property
    def packet_number_length(self) -> int:
        if self.packet_number < 1 << 8:
            return 1
        if self.packet_number < 1 << 16:
            return 2
        if self.packet_number < 1 << 24:
            return 3
        return 4

    def header_size(self) -> int:
        """Bytes of the (long or short) header for this packet."""
        return self._header_size

    @cached_property
    def _header_size(self) -> int:
        if self.packet_type is PacketType.ONE_RTT:
            return 1 + len(self.destination_cid) + self.packet_number_length
        size = 1 + 4  # first byte + version
        size += 1 + len(self.destination_cid)
        size += 1 + len(self.source_cid)
        if self.packet_type is PacketType.INITIAL:
            size += varint_size(len(self.token)) + len(self.token)
        if self.packet_type is PacketType.RETRY:
            # Retry: token + 16-byte integrity tag, no length/packet number.
            return size + len(self.token) + 16
        remaining = self.payload_size + self.packet_number_length + AEAD_TAG_SIZE
        size += varint_size(remaining)
        size += self.packet_number_length
        return size

    @cached_property
    def size(self) -> int:
        """Total encoded packet size including AEAD expansion."""
        if self.packet_type is PacketType.RETRY:
            return self._header_size
        return self._header_size + self.payload_size + AEAD_TAG_SIZE

    @cached_property
    def is_ack_eliciting(self) -> bool:
        return any(frame.is_ack_eliciting for frame in self.frames)

    # -- helpers --------------------------------------------------------------

    def with_padding_to(self, target_size: int) -> "QuicPacket":
        """Return a copy padded (with PADDING frames) up to ``target_size`` bytes.

        Adding padding can grow the length field's varint by a byte; the
        padding amount is reduced accordingly so the result hits the target
        exactly whenever possible.
        """
        deficit = target_size - self.size
        if deficit <= 0:
            return self

        def padded_with(padding: int) -> "QuicPacket":
            return QuicPacket(
                packet_type=self.packet_type,
                destination_cid=self.destination_cid,
                source_cid=self.source_cid,
                packet_number=self.packet_number,
                frames=self.frames + (PaddingFrame(padding),),
                token=self.token,
            )

        candidate = padded_with(deficit)
        overshoot = candidate.size - target_size
        if overshoot > 0 and deficit - overshoot > 0:
            candidate = padded_with(deficit - overshoot)
        return candidate

    @cached_property
    def padding_bytes(self) -> int:
        return sum(frame.size for frame in self.frames if isinstance(frame, PaddingFrame))

    def encode(self) -> bytes:
        """Produce a byte string of exactly :attr:`size` bytes.

        The content is structurally faithful (header fields, varints, frames)
        but not encrypted; the AEAD tag is emitted as zero bytes.  Analysis
        code only relies on sizes and structured metadata.
        """
        if self.packet_type is PacketType.ONE_RTT:
            header = bytes([0x40]) + self.destination_cid.value
            header += self.packet_number.to_bytes(self.packet_number_length, "big")
        else:
            first = {
                PacketType.INITIAL: 0xC0,
                PacketType.HANDSHAKE: 0xE0,
                PacketType.RETRY: 0xF0,
            }[self.packet_type]
            header = bytes([first]) + QUIC_VERSION_1.to_bytes(4, "big")
            header += bytes([len(self.destination_cid)]) + self.destination_cid.value
            header += bytes([len(self.source_cid)]) + self.source_cid.value
            if self.packet_type is PacketType.INITIAL:
                header += encode_varint(len(self.token)) + self.token
            if self.packet_type is PacketType.RETRY:
                return header + self.token + bytes(16)
            remaining = self.payload_size + self.packet_number_length + AEAD_TAG_SIZE
            header += encode_varint(remaining)
            header += self.packet_number.to_bytes(self.packet_number_length, "big")
        payload = b"".join(frame.encode() for frame in self.frames)
        return header + payload + bytes(AEAD_TAG_SIZE)


def InitialPacket(
    destination_cid: ConnectionId,
    source_cid: ConnectionId,
    packet_number: int,
    frames: Tuple[Frame, ...],
    token: bytes = b"",
) -> QuicPacket:
    return QuicPacket(PacketType.INITIAL, destination_cid, source_cid, packet_number, frames, token)


def HandshakePacket(
    destination_cid: ConnectionId,
    source_cid: ConnectionId,
    packet_number: int,
    frames: Tuple[Frame, ...],
) -> QuicPacket:
    return QuicPacket(PacketType.HANDSHAKE, destination_cid, source_cid, packet_number, frames)


def RetryPacket(
    destination_cid: ConnectionId,
    source_cid: ConnectionId,
    token: bytes,
) -> QuicPacket:
    return QuicPacket(PacketType.RETRY, destination_cid, source_cid, packet_number=0, frames=(), token=token)


def OneRttPacket(
    destination_cid: ConnectionId,
    packet_number: int,
    frames: Tuple[Frame, ...],
) -> QuicPacket:
    return QuicPacket(PacketType.ONE_RTT, destination_cid, ConnectionId.empty(), packet_number, frames)
