"""QUIC client side of the handshake.

The client's contribution to the paper's problem space is small but crucial:
the size of its first Initial datagram sets the server's anti-amplification
budget (3× that size).  Browsers pad their Initials to different sizes
(Table 1: Chromium 1250, Firefox 1357); the measurement sweep varies the size
between 1200 and 1472 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional, Tuple

from ..tls.cert_compression import CertificateCompressionAlgorithm
from ..tls.handshake_messages import ClientHello
from .coalescing import UdpDatagram
from .connection_id import ConnectionId
from .frames import AckFrame, CryptoFrame, split_crypto_stream
from .packet import MIN_CLIENT_INITIAL_SIZE, InitialPacket, HandshakePacket, QuicPacket


@dataclass(frozen=True)
class QuicClientConfig:
    """Client knobs that influence the handshake."""

    initial_datagram_size: int = 1252
    compression_algorithms: Tuple[CertificateCompressionAlgorithm, ...] = ()
    connection_id_length: int = 8
    mtu: int = 1472

    def __post_init__(self) -> None:
        if self.initial_datagram_size < MIN_CLIENT_INITIAL_SIZE:
            raise ValueError(
                f"client Initial datagrams must be at least {MIN_CLIENT_INITIAL_SIZE} bytes "
                f"(got {self.initial_datagram_size})"
            )
        if self.initial_datagram_size > self.mtu:
            raise ValueError(
                f"client Initial of {self.initial_datagram_size} bytes exceeds the MTU ({self.mtu})"
            )

    @classmethod
    def browser(cls, name: str) -> "QuicClientConfig":
        """Profiles of the browsers listed in the paper's Table 1."""
        normalized = name.strip().lower()
        if normalized in {"chrome", "chromium", "edge", "brave", "vivaldi", "opera"}:
            return cls(
                initial_datagram_size=1250,
                compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
            )
        if normalized == "firefox":
            return cls(initial_datagram_size=1357, compression_algorithms=())
        raise ValueError(f"unknown browser profile: {name!r}")


def build_client_initial_datagram(
    domain: str,
    config: QuicClientConfig,
    token: bytes = b"",
    packet_number: int = 0,
) -> UdpDatagram:
    """Build the client's first flight: one Initial padded to the target size.

    The datagram is a pure function of its arguments and immutable, so repeated
    probes of the same service (the Initial-size sweep alone revisits every
    domain dozens of times) share one memoized instance.
    """
    return _build_client_initial_datagram(domain, config, token, packet_number)


@lru_cache(maxsize=65_536)
def _client_hello(
    domain: str, compression_algorithms: Tuple[CertificateCompressionAlgorithm, ...]
) -> ClientHello:
    """One ClientHello per (domain, offer): its encoding is independent of the
    Initial size, so the sweep shares it across all padding targets."""
    return ClientHello(server_name=domain, compression_algorithms=compression_algorithms)


@lru_cache(maxsize=32_768)
def _build_client_initial_datagram(
    domain: str,
    config: QuicClientConfig,
    token: bytes,
    packet_number: int,
) -> UdpDatagram:
    client_hello = _client_hello(domain, config.compression_algorithms)
    crypto = CryptoFrame(offset=0, data=client_hello.encode())
    destination = ConnectionId.generate(f"dcid:{domain}", config.connection_id_length)
    source = ConnectionId.generate(f"scid:client:{domain}", config.connection_id_length)
    packet = InitialPacket(
        destination_cid=destination,
        source_cid=source,
        packet_number=packet_number,
        frames=(crypto,),
        token=token,
    )
    padded = packet.with_padding_to(config.initial_datagram_size)
    if padded.size != config.initial_datagram_size and packet.size < config.initial_datagram_size:
        raise AssertionError("padding must reach the configured Initial size exactly")
    return UdpDatagram((padded,))


def build_client_second_flight(
    domain: str,
    config: QuicClientConfig,
    server_initial_packets: int = 1,
    server_handshake_packets: int = 1,
) -> Tuple[UdpDatagram, ...]:
    """Build the client's second flight: Initial ACK plus Handshake ACK/Finished.

    Receiving any of these proves the round trip and validates the client's
    address at the server.  Sizes are small; they only matter for completeness
    of the byte accounting in traces.  Memoized like the first flight.
    """
    # Keyed on the connection-ID length alone: the second flight's content is
    # independent of the Initial size, so the sweep shares one instance.
    return _build_client_second_flight(
        domain, config.connection_id_length, server_initial_packets, server_handshake_packets
    )


@lru_cache(maxsize=32_768)
def _build_client_second_flight(
    domain: str,
    connection_id_length: int,
    server_initial_packets: int,
    server_handshake_packets: int,
) -> Tuple[UdpDatagram, ...]:
    destination = ConnectionId.generate(f"dcid:{domain}", connection_id_length)
    source = ConnectionId.generate(f"scid:client:{domain}", connection_id_length)
    initial_ack = InitialPacket(
        destination_cid=destination,
        source_cid=source,
        packet_number=1,
        frames=(AckFrame(largest_acknowledged=max(server_initial_packets - 1, 0)),),
    )
    finished_data = bytes(36)  # TLS Finished (52 bytes incl. header) approximated by verify_data
    handshake = HandshakePacket(
        destination_cid=destination,
        source_cid=source,
        packet_number=0,
        frames=(
            AckFrame(largest_acknowledged=max(server_handshake_packets - 1, 0)),
            CryptoFrame(offset=0, data=finished_data),
        ),
    )
    padded_initial = initial_ack.with_padding_to(MIN_CLIENT_INITIAL_SIZE)
    return (UdpDatagram((padded_initial,)), UdpDatagram((handshake,)))
