"""QUIC client side of the handshake.

The client's contribution to the paper's problem space is small but crucial:
the size of its first Initial datagram sets the server's anti-amplification
budget (3× that size).  Browsers pad their Initials to different sizes
(Table 1: Chromium 1250, Firefox 1357); the measurement sweep varies the size
between 1200 and 1472 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..tls.cert_compression import CertificateCompressionAlgorithm
from ..tls.handshake_messages import ClientHello
from .coalescing import UdpDatagram
from .connection_id import ConnectionId
from .frames import AckFrame, CryptoFrame, split_crypto_stream
from .packet import MIN_CLIENT_INITIAL_SIZE, InitialPacket, HandshakePacket, QuicPacket


@dataclass(frozen=True)
class QuicClientConfig:
    """Client knobs that influence the handshake."""

    initial_datagram_size: int = 1252
    compression_algorithms: Tuple[CertificateCompressionAlgorithm, ...] = ()
    connection_id_length: int = 8
    mtu: int = 1472

    def __post_init__(self) -> None:
        if self.initial_datagram_size < MIN_CLIENT_INITIAL_SIZE:
            raise ValueError(
                f"client Initial datagrams must be at least {MIN_CLIENT_INITIAL_SIZE} bytes "
                f"(got {self.initial_datagram_size})"
            )
        if self.initial_datagram_size > self.mtu:
            raise ValueError(
                f"client Initial of {self.initial_datagram_size} bytes exceeds the MTU ({self.mtu})"
            )

    @classmethod
    def browser(cls, name: str) -> "QuicClientConfig":
        """Profiles of the browsers listed in the paper's Table 1."""
        normalized = name.strip().lower()
        if normalized in {"chrome", "chromium", "edge", "brave", "vivaldi", "opera"}:
            return cls(
                initial_datagram_size=1250,
                compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
            )
        if normalized == "firefox":
            return cls(initial_datagram_size=1357, compression_algorithms=())
        raise ValueError(f"unknown browser profile: {name!r}")


def build_client_initial_datagram(
    domain: str,
    config: QuicClientConfig,
    token: bytes = b"",
    packet_number: int = 0,
) -> UdpDatagram:
    """Build the client's first flight: one Initial padded to the target size."""
    client_hello = ClientHello(
        server_name=domain,
        compression_algorithms=config.compression_algorithms,
    )
    crypto = CryptoFrame(offset=0, data=client_hello.encode())
    destination = ConnectionId.generate(f"dcid:{domain}", config.connection_id_length)
    source = ConnectionId.generate(f"scid:client:{domain}", config.connection_id_length)
    packet = InitialPacket(
        destination_cid=destination,
        source_cid=source,
        packet_number=packet_number,
        frames=(crypto,),
        token=token,
    )
    padded = packet.with_padding_to(config.initial_datagram_size)
    if padded.size != config.initial_datagram_size and packet.size < config.initial_datagram_size:
        raise AssertionError("padding must reach the configured Initial size exactly")
    return UdpDatagram((padded,))


def build_client_second_flight(
    domain: str,
    config: QuicClientConfig,
    server_initial_packets: int = 1,
    server_handshake_packets: int = 1,
) -> Tuple[UdpDatagram, ...]:
    """Build the client's second flight: Initial ACK plus Handshake ACK/Finished.

    Receiving any of these proves the round trip and validates the client's
    address at the server.  Sizes are small; they only matter for completeness
    of the byte accounting in traces.
    """
    destination = ConnectionId.generate(f"dcid:{domain}", config.connection_id_length)
    source = ConnectionId.generate(f"scid:client:{domain}", config.connection_id_length)
    initial_ack = InitialPacket(
        destination_cid=destination,
        source_cid=source,
        packet_number=1,
        frames=(AckFrame(largest_acknowledged=max(server_initial_packets - 1, 0)),),
    )
    finished_data = bytes(36)  # TLS Finished (52 bytes incl. header) approximated by verify_data
    handshake = HandshakePacket(
        destination_cid=destination,
        source_cid=source,
        packet_number=0,
        frames=(
            AckFrame(largest_acknowledged=max(server_handshake_packets - 1, 0)),
            CryptoFrame(offset=0, data=finished_data),
        ),
    )
    padded_initial = initial_ack.with_padding_to(MIN_CLIENT_INITIAL_SIZE)
    return (UdpDatagram((padded_initial,)), UdpDatagram((handshake,)))
