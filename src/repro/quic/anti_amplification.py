"""Server-side anti-amplification accounting (RFC 9000 §8.1, RFC 9002 §6.2.2.1).

Until a client's address is validated (by receiving a packet that proves a
round trip, or a valid Retry token), the server must not send more than three
times the number of bytes it has received from that address.  Padding and
retransmitted bytes count against the limit.

The tracker also supports the two non-compliant accounting modes the paper
observed in the wild:

* *exclude_padding*: padding-only datagrams are not charged against the limit
  (the Cloudflare behaviour that produces >3× first flights), and
* *ignore_limit*: the limit is never enforced for retransmissions (the mvfst
  behaviour that produces 28–45× amplification towards spoofed clients).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: RFC 9000 §8.1: three times the bytes received.
ANTI_AMPLIFICATION_FACTOR = 3


@dataclass
class AmplificationTracker:
    """Tracks received/sent bytes towards an unvalidated peer address."""

    factor: int = ANTI_AMPLIFICATION_FACTOR
    exclude_padding: bool = False
    ignore_limit: bool = False
    bytes_received: int = 0
    bytes_sent: int = 0
    bytes_sent_unaccounted: int = 0
    address_validated: bool = False

    # -- events ---------------------------------------------------------------

    def on_datagram_received(self, size: int) -> None:
        """Record bytes received from the (still unvalidated) client address."""
        if size < 0:
            raise ValueError("datagram size must be non-negative")
        self.bytes_received += size

    def on_address_validated(self) -> None:
        """Mark the address as validated; the limit no longer applies."""
        self.address_validated = True

    def on_datagram_sent(self, size: int, padding_only: bool = False) -> None:
        """Record bytes sent to the client address."""
        if size < 0:
            raise ValueError("datagram size must be non-negative")
        self.bytes_sent += size
        if self.exclude_padding and padding_only:
            self.bytes_sent_unaccounted += size

    # -- queries --------------------------------------------------------------

    @property
    def accounted_bytes_sent(self) -> int:
        """Bytes this (possibly non-compliant) server counts against the limit."""
        return self.bytes_sent - self.bytes_sent_unaccounted

    @property
    def limit(self) -> int:
        """Current send allowance in bytes."""
        return self.factor * self.bytes_received

    @property
    def remaining_budget(self) -> int:
        """Bytes the server believes it may still send before validation."""
        if self.address_validated or self.ignore_limit:
            return 1 << 62
        return max(self.limit - self.accounted_bytes_sent, 0)

    def can_send(self, size: int) -> bool:
        """Whether this server's accounting permits sending ``size`` more bytes."""
        if self.address_validated or self.ignore_limit:
            return True
        return self.accounted_bytes_sent + size <= self.limit

    @property
    def is_blocked(self) -> bool:
        return not self.address_validated and not self.ignore_limit and self.remaining_budget == 0

    # -- ground truth (independent of the server's own accounting) -------------

    @property
    def true_amplification_factor(self) -> float:
        """Actual bytes sent / bytes received, regardless of accounting tricks."""
        if self.bytes_received == 0:
            return float("inf") if self.bytes_sent else 0.0
        return self.bytes_sent / self.bytes_received

    @property
    def violates_rfc_limit(self) -> bool:
        """True when the actually-sent bytes exceed 3× the received bytes."""
        return self.bytes_sent > ANTI_AMPLIFICATION_FACTOR * self.bytes_received
