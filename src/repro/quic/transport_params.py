"""QUIC transport parameters (RFC 9000 §18)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .connection_id import ConnectionId
from .varint import encode_varint


# Transport parameter IDs (RFC 9000 §18.2).
ORIGINAL_DESTINATION_CONNECTION_ID = 0x00
MAX_IDLE_TIMEOUT = 0x01
MAX_UDP_PAYLOAD_SIZE = 0x03
INITIAL_MAX_DATA = 0x04
INITIAL_MAX_STREAM_DATA_BIDI_LOCAL = 0x05
INITIAL_MAX_STREAM_DATA_BIDI_REMOTE = 0x06
INITIAL_MAX_STREAM_DATA_UNI = 0x07
INITIAL_MAX_STREAMS_BIDI = 0x08
INITIAL_MAX_STREAMS_UNI = 0x09
ACK_DELAY_EXPONENT = 0x0A
MAX_ACK_DELAY = 0x0B
DISABLE_ACTIVE_MIGRATION = 0x0C
INITIAL_SOURCE_CONNECTION_ID = 0x0F
RETRY_SOURCE_CONNECTION_ID = 0x10


@dataclass(frozen=True)
class TransportParameters:
    """The transport parameters endpoints exchange during the handshake."""

    max_idle_timeout_ms: int = 30_000
    max_udp_payload_size: int = 1472
    initial_max_data: int = 10 * 1024 * 1024
    initial_max_stream_data: int = 1024 * 1024
    initial_max_streams_bidi: int = 100
    initial_max_streams_uni: int = 3
    ack_delay_exponent: int = 3
    max_ack_delay_ms: int = 25
    disable_active_migration: bool = False
    initial_source_connection_id: Optional[ConnectionId] = None
    original_destination_connection_id: Optional[ConnectionId] = None
    retry_source_connection_id: Optional[ConnectionId] = None

    def encode(self) -> bytes:
        """Encode as the sequence of (id, length, value) entries."""
        entries: Dict[int, bytes] = {
            MAX_IDLE_TIMEOUT: encode_varint(self.max_idle_timeout_ms),
            MAX_UDP_PAYLOAD_SIZE: encode_varint(self.max_udp_payload_size),
            INITIAL_MAX_DATA: encode_varint(self.initial_max_data),
            INITIAL_MAX_STREAM_DATA_BIDI_LOCAL: encode_varint(self.initial_max_stream_data),
            INITIAL_MAX_STREAM_DATA_BIDI_REMOTE: encode_varint(self.initial_max_stream_data),
            INITIAL_MAX_STREAM_DATA_UNI: encode_varint(self.initial_max_stream_data),
            INITIAL_MAX_STREAMS_BIDI: encode_varint(self.initial_max_streams_bidi),
            INITIAL_MAX_STREAMS_UNI: encode_varint(self.initial_max_streams_uni),
            ACK_DELAY_EXPONENT: encode_varint(self.ack_delay_exponent),
            MAX_ACK_DELAY: encode_varint(self.max_ack_delay_ms),
        }
        if self.disable_active_migration:
            entries[DISABLE_ACTIVE_MIGRATION] = b""
        if self.initial_source_connection_id is not None:
            entries[INITIAL_SOURCE_CONNECTION_ID] = self.initial_source_connection_id.value
        if self.original_destination_connection_id is not None:
            entries[ORIGINAL_DESTINATION_CONNECTION_ID] = self.original_destination_connection_id.value
        if self.retry_source_connection_id is not None:
            entries[RETRY_SOURCE_CONNECTION_ID] = self.retry_source_connection_id.value
        encoded = b""
        for parameter_id, value in sorted(entries.items()):
            encoded += encode_varint(parameter_id) + encode_varint(len(value)) + value
        return encoded

    @property
    def encoded_size(self) -> int:
        return len(self.encode())
