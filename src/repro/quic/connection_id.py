"""QUIC connection identifiers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache


@dataclass(frozen=True)
class ConnectionId:
    """An opaque connection ID (0–20 bytes, RFC 9000 §5.1)."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) > 20:
            raise ValueError("connection IDs are limited to 20 bytes")

    @classmethod
    def generate(cls, seed: str, length: int = 8) -> "ConnectionId":
        """Deterministically derive a connection ID from a seed string."""
        return _generate(seed, length)

    @classmethod
    def empty(cls) -> "ConnectionId":
        return cls(b"")

    def __len__(self) -> int:
        return len(self.value)

    def hex(self) -> str:
        return self.value.hex()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.hex() or "(empty)"


@lru_cache(maxsize=65_536)
def _generate(seed: str, length: int) -> ConnectionId:
    if not 0 <= length <= 20:
        raise ValueError("connection ID length must be within 0..20")
    digest = hashlib.sha256(seed.encode()).digest()
    return ConnectionId(digest[:length])
