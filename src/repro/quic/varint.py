"""QUIC variable-length integer encoding (RFC 9000 §16)."""

from __future__ import annotations

from typing import Tuple


class VarintError(ValueError):
    """Raised for out-of-range values or malformed encodings."""


MAX_VARINT = (1 << 62) - 1

#: Precomputed sizes for every value below 2**14.  Frame lengths, CRYPTO
#: offsets and packet lengths almost always fall in this range, so the hot
#: path of :func:`varint_size` is a single bytes-object index.
_SIZE_TABLE = bytes(1 if value < 1 << 6 else 2 for value in range(1 << 14))

_PREFIX_BY_SIZE = {1: 0x00, 2: 0x40, 4: 0x80, 8: 0xC0}


def varint_size(value: int) -> int:
    """Number of bytes the varint encoding of ``value`` occupies."""
    if 0 <= value < 1 << 14:
        return _SIZE_TABLE[value]
    if value < 0 or value > MAX_VARINT:
        raise VarintError(f"value out of varint range: {value}")
    if value < 1 << 30:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` using the shortest form (as required for DER-like minimality)."""
    size = varint_size(value)
    encoded = value.to_bytes(size, "big")
    return bytes([encoded[0] | _PREFIX_BY_SIZE[size]]) + encoded[1:]


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint, returning ``(value, next_offset)``."""
    if offset >= len(data):
        raise VarintError("truncated varint")
    first = data[offset]
    size = 1 << (first >> 6)
    if offset + size > len(data):
        raise VarintError("truncated varint body")
    value = first & 0x3F
    for index in range(1, size):
        value = (value << 8) | data[offset + index]
    return value, offset + size
