"""QUIC v1 transport substrate (RFC 9000, RFC 9001, RFC 9002 §6.2.2.1).

This package implements the parts of QUIC that the paper's measurements hinge
on:

* wire encodings: variable-length integers, long-header packets (Initial,
  Handshake, Retry), the frames that appear during the handshake (CRYPTO, ACK,
  PADDING, PING, CONNECTION_CLOSE),
* packet coalescing into UDP datagrams,
* the 3× anti-amplification limit and its server-side accounting,
* retransmission of Initial/Handshake data before address validation,
* a client and a server handshake engine, where the server's behaviour is
  configurable through :class:`~repro.quic.profiles.ServerBehaviorProfile` so
  that RFC-compliant stacks, Cloudflare-like stacks (no coalescence, padded
  ACK datagrams excluded from the limit check) and mvfst-like stacks
  (unbounded retransmission towards unvalidated clients) can all be exercised.
"""

from .varint import encode_varint, decode_varint, varint_size, VarintError
from .connection_id import ConnectionId
from .frames import (
    Frame,
    FrameType,
    PaddingFrame,
    PingFrame,
    AckFrame,
    CryptoFrame,
    ConnectionCloseFrame,
)
from .packet import (
    PacketType,
    QuicPacket,
    InitialPacket,
    HandshakePacket,
    RetryPacket,
    OneRttPacket,
    MIN_CLIENT_INITIAL_SIZE,
    AEAD_TAG_SIZE,
)
from .coalescing import UdpDatagram, coalesce, split_into_datagrams
from .transport_params import TransportParameters
from .anti_amplification import AmplificationTracker, ANTI_AMPLIFICATION_FACTOR
from .profiles import ServerBehaviorProfile, CoalescenceMode, BUILTIN_PROFILES
from .client import QuicClientConfig, build_client_initial_datagram
from .server import QuicServer, ServerFlightPlan
from .handshake import (
    HandshakeOutcome,
    HandshakeTrace,
    HandshakeClass,
    simulate_handshake,
    simulate_unvalidated_probe,
)

__all__ = [
    "encode_varint",
    "decode_varint",
    "varint_size",
    "VarintError",
    "ConnectionId",
    "Frame",
    "FrameType",
    "PaddingFrame",
    "PingFrame",
    "AckFrame",
    "CryptoFrame",
    "ConnectionCloseFrame",
    "PacketType",
    "QuicPacket",
    "InitialPacket",
    "HandshakePacket",
    "RetryPacket",
    "OneRttPacket",
    "MIN_CLIENT_INITIAL_SIZE",
    "AEAD_TAG_SIZE",
    "UdpDatagram",
    "coalesce",
    "split_into_datagrams",
    "TransportParameters",
    "AmplificationTracker",
    "ANTI_AMPLIFICATION_FACTOR",
    "ServerBehaviorProfile",
    "CoalescenceMode",
    "BUILTIN_PROFILES",
    "QuicClientConfig",
    "build_client_initial_datagram",
    "QuicServer",
    "ServerFlightPlan",
    "HandshakeOutcome",
    "HandshakeTrace",
    "HandshakeClass",
    "simulate_handshake",
    "simulate_unvalidated_probe",
]
