"""End-to-end QUIC handshake simulation and classification.

This module glues the client and server engines together and produces the
observable quantities the paper's scanners record:

* the handshake class (1-RTT, RETRY, Multi-RTT, Amplification) per §3.2,
* the amplification factor of the first RTT (Figure 4),
* the split of received bytes into TLS payload and QUIC overhead (Figure 5),
* total bytes a server emits towards a spoofed, never-responding client
  (Figures 9 and 11, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from ..tls.cert_compression import CertificateCompressionAlgorithm
from ..tls.handshake_messages import ClientHello
from ..x509.chain import CertificateChain
from .anti_amplification import ANTI_AMPLIFICATION_FACTOR
from .client import QuicClientConfig, build_client_initial_datagram, build_client_second_flight
from .profiles import ServerBehaviorProfile
from .server import FlightPlanCache, QuicServer, ServerFlightPlan


class HandshakeClass(Enum):
    """The four handshake groups of the paper's §3.2 plus an unreachable bucket."""

    ONE_RTT = "1-RTT"
    RETRY = "RETRY"
    MULTI_RTT = "Multi-RTT"
    AMPLIFICATION = "Amplification"
    UNREACHABLE = "Unreachable"

    @property
    def is_rfc_compliant(self) -> bool:
        return self in (HandshakeClass.ONE_RTT, HandshakeClass.RETRY, HandshakeClass.MULTI_RTT)

    @property
    def completes_in_one_rtt(self) -> bool:
        return self in (HandshakeClass.ONE_RTT, HandshakeClass.AMPLIFICATION)


@dataclass(frozen=True)
class HandshakeTrace:
    """Byte-level record of one simulated handshake."""

    domain: str
    client_initial_size: int
    server_profile: str
    plan: ServerFlightPlan
    client_bytes_sent: int
    compression_negotiated: Optional[CertificateCompressionAlgorithm]

    @property
    def server_bytes_first_rtt(self) -> int:
        retry = self.plan.retry_datagram.size if self.plan.retry_datagram else 0
        return retry + self.plan.first_rtt_bytes

    @property
    def server_bytes_total(self) -> int:
        return self.plan.total_bytes

    @property
    def first_rtt_amplification(self) -> float:
        """UDP payload received during the first RTT divided by bytes sent."""
        return self.server_bytes_first_rtt / self.client_initial_size

    @property
    def amplification_limit_bytes(self) -> int:
        return ANTI_AMPLIFICATION_FACTOR * self.client_initial_size

    @property
    def exceeds_amplification_limit(self) -> bool:
        return self.server_bytes_first_rtt > self.amplification_limit_bytes

    @property
    def tls_payload_bytes(self) -> int:
        return self.plan.tls_bytes_total

    @property
    def quic_overhead_bytes(self) -> int:
        return max(self.server_bytes_total - self.tls_payload_bytes, 0)

    @property
    def round_trips(self) -> int:
        """Round trips until the handshake can complete."""
        rtts = 1
        if self.plan.uses_retry:
            rtts += 1
        if self.plan.requires_additional_rtt:
            rtts += 1
        return rtts


@dataclass(frozen=True)
class HandshakeOutcome:
    """A classified handshake, the unit the analysis layer aggregates."""

    trace: HandshakeTrace
    handshake_class: HandshakeClass

    @property
    def domain(self) -> str:
        return self.trace.domain


def classify(trace: HandshakeTrace) -> HandshakeClass:
    """Assign a handshake to one of the paper's four groups.

    Precedence follows §3.2: Retry handshakes are their own group regardless
    of byte counts; handshakes that need extra round trips are Multi-RTT; a
    handshake that finishes in one round trip is Amplification when the
    server's first-RTT bytes exceed 3× the client Initial, and 1-RTT otherwise.
    """
    if trace.plan.uses_retry:
        return HandshakeClass.RETRY
    if trace.plan.requires_additional_rtt:
        return HandshakeClass.MULTI_RTT
    if trace.exceeds_amplification_limit:
        return HandshakeClass.AMPLIFICATION
    return HandshakeClass.ONE_RTT


def simulate_handshake(
    domain: str,
    chain: CertificateChain,
    profile: ServerBehaviorProfile,
    client: Optional[QuicClientConfig] = None,
    flight_cache: Optional[FlightPlanCache] = None,
) -> HandshakeOutcome:
    """Simulate a complete handshake (client responds and validates its address).

    ``flight_cache`` overrides the process-wide flight-plan cache; sharded
    campaign workers pass their own so per-shard cache counters stay
    independent of how shards are spread over processes.
    """
    client = client or QuicClientConfig()
    initial = build_client_initial_datagram(domain, client)
    client_hello = ClientHello(
        server_name=domain, compression_algorithms=client.compression_algorithms
    )
    server = QuicServer(domain, chain, profile, flight_cache=flight_cache)

    plan = server.respond_to_initial(client_hello, client_initial_size=initial.size)
    if plan.uses_retry:
        # The client retries with the token; the rebuilt Initial is the same
        # size (the token replaces padding bytes).
        plan = server.respond_to_initial(
            client_hello, client_initial_size=initial.size, client_sent_retry_token=True
        )
        plan = ServerFlightPlan(
            retry_datagram=server._build_retry(),
            first_rtt_datagrams=plan.first_rtt_datagrams,
            deferred_datagrams=plan.deferred_datagrams,
            tls_flight=plan.tls_flight,
            tracker=plan.tracker,
        )

    second_flight = build_client_second_flight(domain, client)
    client_bytes = initial.size + sum(d.size for d in second_flight)
    trace = HandshakeTrace(
        domain=domain,
        client_initial_size=initial.size,
        server_profile=profile.name,
        plan=plan,
        client_bytes_sent=client_bytes,
        compression_negotiated=plan.tls_flight.compression,
    )
    return HandshakeOutcome(trace=trace, handshake_class=classify(trace))


@dataclass(frozen=True)
class UnvalidatedProbeResult:
    """Result of sending a single Initial and never acknowledging the response."""

    domain: str
    server_profile: str
    client_initial_size: int
    bytes_received: int

    @property
    def amplification_factor(self) -> float:
        return self.bytes_received / self.client_initial_size

    @property
    def violates_limit(self) -> bool:
        return self.bytes_received > ANTI_AMPLIFICATION_FACTOR * self.client_initial_size


def simulate_unvalidated_probe(
    domain: str,
    chain: CertificateChain,
    profile: ServerBehaviorProfile,
    client: Optional[QuicClientConfig] = None,
) -> UnvalidatedProbeResult:
    """Simulate the §4.3 experiment: one Initial, no ACKs, count server bytes.

    This is what both the ZMap-style active scan and (from the victim's
    perspective) a spoofed-source handshake produce.
    """
    client = client or QuicClientConfig(initial_datagram_size=1252)
    initial = build_client_initial_datagram(domain, client)
    client_hello = ClientHello(
        server_name=domain, compression_algorithms=client.compression_algorithms
    )
    server = QuicServer(domain, chain, profile)
    _, total_bytes = server.unvalidated_transmission(client_hello, client_initial_size=initial.size)
    return UnvalidatedProbeResult(
        domain=domain,
        server_profile=profile.name,
        client_initial_size=initial.size,
        bytes_received=total_bytes,
    )
