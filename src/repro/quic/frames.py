"""QUIC frames used during the connection handshake (RFC 9000 §19)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from ..caching import cached_property  # lock-free (see repro.caching)
from typing import Tuple

from .varint import encode_varint, varint_size


class FrameType(IntEnum):
    """Frame type codes for the frames this project emits."""

    PADDING = 0x00
    PING = 0x01
    ACK = 0x02
    CRYPTO = 0x06
    CONNECTION_CLOSE = 0x1C


@dataclass(frozen=True)
class Frame:
    """Base class; concrete frames implement :meth:`encode`."""

    def encode(self) -> bytes:  # pragma: no cover - abstract
        raise NotImplementedError

    def _wire_size(self) -> int:
        """Arithmetic wire size; must equal ``len(self.encode())``."""
        return len(self.encode())

    @cached_property
    def size(self) -> int:
        return self._wire_size()

    @property
    def is_ack_eliciting(self) -> bool:
        """PADDING, ACK and CONNECTION_CLOSE are not ack-eliciting (RFC 9002 §2)."""
        return True


@dataclass(frozen=True)
class PaddingFrame(Frame):
    """A run of PADDING frames; each PADDING frame is a single zero byte."""

    length: int = 1

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("padding length must be non-negative")

    def encode(self) -> bytes:
        return bytes(self.length)

    def _wire_size(self) -> int:
        return self.length

    @property
    def is_ack_eliciting(self) -> bool:
        return False


@dataclass(frozen=True)
class PingFrame(Frame):
    def encode(self) -> bytes:
        return bytes([FrameType.PING])

    def _wire_size(self) -> int:
        return 1


@dataclass(frozen=True)
class AckFrame(Frame):
    """An ACK frame acknowledging a single contiguous range starting at 0."""

    largest_acknowledged: int = 0
    ack_delay: int = 0
    first_ack_range: int = 0

    def encode(self) -> bytes:
        return (
            bytes([FrameType.ACK])
            + encode_varint(self.largest_acknowledged)
            + encode_varint(self.ack_delay)
            + encode_varint(0)  # ack range count
            + encode_varint(self.first_ack_range)
        )

    def _wire_size(self) -> int:
        return (
            1
            + varint_size(self.largest_acknowledged)
            + varint_size(self.ack_delay)
            + 1  # ack range count (always zero here)
            + varint_size(self.first_ack_range)
        )

    @property
    def is_ack_eliciting(self) -> bool:
        return False


@dataclass(frozen=True)
class CryptoFrame(Frame):
    """CRYPTO frame carrying a slice of the TLS handshake byte stream."""

    offset: int
    data: bytes

    def encode(self) -> bytes:
        return (
            bytes([FrameType.CRYPTO])
            + encode_varint(self.offset)
            + encode_varint(len(self.data))
            + self.data
        )

    def _wire_size(self) -> int:
        return 1 + varint_size(self.offset) + varint_size(len(self.data)) + len(self.data)

    @property
    def end_offset(self) -> int:
        return self.offset + len(self.data)


@dataclass(frozen=True)
class ConnectionCloseFrame(Frame):
    """CONNECTION_CLOSE (transport variant, type 0x1c)."""

    error_code: int = 0
    frame_type: int = 0
    reason: str = ""

    def encode(self) -> bytes:
        reason_bytes = self.reason.encode("utf-8")
        return (
            bytes([FrameType.CONNECTION_CLOSE])
            + encode_varint(self.error_code)
            + encode_varint(self.frame_type)
            + encode_varint(len(reason_bytes))
            + reason_bytes
        )

    def _wire_size(self) -> int:
        reason_length = len(self.reason.encode("utf-8"))
        return (
            1
            + varint_size(self.error_code)
            + varint_size(self.frame_type)
            + varint_size(reason_length)
            + reason_length
        )

    @property
    def is_ack_eliciting(self) -> bool:
        return False


def split_crypto_stream(data: bytes, chunk_size: int, start_offset: int = 0) -> Tuple[CryptoFrame, ...]:
    """Split a TLS byte stream into CRYPTO frames of at most ``chunk_size`` payload bytes."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    frames = []
    offset = 0
    while offset < len(data):
        chunk = data[offset : offset + chunk_size]
        frames.append(CryptoFrame(offset=start_offset + offset, data=chunk))
        offset += len(chunk)
    if not frames:
        frames.append(CryptoFrame(offset=start_offset, data=b""))
    return tuple(frames)
