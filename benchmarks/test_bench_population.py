"""Benchmark: two-phase population generation and the sweep discovery pass.

Pins the cost relationship the two-phase refactor exists for:

* the skeleton pass (phase 1, no chain issuance) must stay far cheaper than
  full generation — it is what makes the ``--stream --sweep`` discovery pass
  near-free,
* full generation itself runs through the per-``(issuer, key algorithm)``
  issuance fast path and must stay in the tens-of-milliseconds range per
  1024-domain generation shard,
* the discovery pass (`_count_quic_targets`) counts from skeletons and must
  not regress to chain-issuing regeneration.

The population here is a fixed four-generation-shard config (not the shared
campaign fixture), so the measured shard costs are comparable across runs
regardless of the harness' campaign-size knobs.
"""

from __future__ import annotations

import pytest

from repro.scanners.sharding import ShardTask, plan_shards
from repro.scanners.streaming import _count_quic_targets
from repro.webpki.population import (
    GENERATION_SHARD_SIZE,
    PopulationConfig,
    generate_shard,
)
from repro.webpki.tranco import generate_tranco_list

#: Multi-shard config so per-shard RNG derivation and slicing are exercised.
BENCH_CONFIG = PopulationConfig(size=4 * GENERATION_SHARD_SIZE, seed=2022)


@pytest.fixture(scope="module", autouse=True)
def warm_tranco():
    """Pre-build the ranked list so benchmarks time generation, not Tranco."""
    generate_tranco_list(BENCH_CONFIG.size, seed=BENCH_CONFIG.seed)


def test_bench_skeleton_generation(benchmark):
    shard = benchmark(generate_shard, BENCH_CONFIG, 1, True)
    assert len(shard) == GENERATION_SHARD_SIZE
    counts = shard.category_counts()
    assert sum(counts.values()) == GENERATION_SHARD_SIZE


def test_bench_full_generation(benchmark):
    shard = benchmark(generate_shard, BENCH_CONFIG, 1)
    assert len(shard) == GENERATION_SHARD_SIZE
    assert any(d.https_chain is not None for d in shard.deployments)


def test_bench_skeleton_materialisation(benchmark):
    skeleton_shard = generate_shard(BENCH_CONFIG, 1, skeleton=True)
    shard = benchmark(skeleton_shard.materialize)
    assert shard.deployments == generate_shard(BENCH_CONFIG, 1).deployments


def test_bench_discovery_pass(benchmark):
    tasks = [
        ShardTask(
            index=spec.index,
            population_config=BENCH_CONFIG,
            start=spec.start,
            stop=spec.stop,
        )
        for spec in plan_shards(BENCH_CONFIG.size, 2048)
    ]

    def discover() -> int:
        return sum(_count_quic_targets(task)[1] for task in tasks)

    quic_targets = benchmark(discover)
    # Appendix D: ≈24 % of resolved names speak QUIC; counting from skeletons
    # must see exactly what full generation produces.
    assert quic_targets == pytest.approx(0.21 * BENCH_CONFIG.size, rel=0.25)


def test_skeleton_pass_is_much_cheaper_than_full_generation():
    """The two-phase contract's reason to exist, pinned coarsely (≥2×).

    Issuance already runs through the per-issuer fast path, so full generation
    is only a few times slower than the skeleton pass; the precise ratio is
    hardware-dependent (docs/PERFORMANCE.md tracks it).  This floor only
    guards against the skeleton pass accidentally materialising chains again.
    """
    import time

    generate_shard(BENCH_CONFIG, 2, skeleton=True)  # warm caches
    generate_shard(BENCH_CONFIG, 2)
    t0 = time.perf_counter()
    for _ in range(3):
        generate_shard(BENCH_CONFIG, 3, skeleton=True)
    skeleton_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(3):
        generate_shard(BENCH_CONFIG, 3)
    full_seconds = time.perf_counter() - t0
    assert full_seconds > 2 * skeleton_seconds
