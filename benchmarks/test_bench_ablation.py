"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation answers one "what would change if ..." question with the same
simulation machinery used for the main figures:

* packet coalescence on/off for an otherwise compliant server,
* counting padding against the limit (RFC) vs excluding it (CDN behaviour),
* bounding retransmissions to unvalidated clients vs not (the amplifier bug),
* certificate compression on/off for the dominant large-chain deployment.
"""

from dataclasses import replace

import pytest

from repro.quic import QuicClientConfig, simulate_handshake, simulate_unvalidated_probe
from repro.quic.profiles import CLOUDFLARE_LIKE, MVFST_LIKE, MVFST_PATCHED, RFC_COMPLIANT, CoalescenceMode
from repro.tls.cert_compression import CertificateCompressionAlgorithm
from repro.x509.ca import default_hierarchy

CLIENT = QuicClientConfig(initial_datagram_size=1362)
COMPRESSING_CLIENT = QuicClientConfig(
    initial_datagram_size=1362,
    compression_algorithms=(CertificateCompressionAlgorithm.BROTLI,),
)


@pytest.fixture(scope="module")
def borderline_chain():
    """A chain that fits in one RTT only when the server does not waste budget."""
    return default_hierarchy().profiles["DigiCert SHA2"].issue("ablation-coalesce.example")


@pytest.fixture(scope="module")
def large_chain():
    return default_hierarchy().profiles["Let's Encrypt R3 + cross-signed X1"].issue("ablation-large.example")


def test_bench_ablation_coalescence(benchmark, borderline_chain):
    """Coalescence on vs off: padding waste turns a 1-RTT setup into Multi-RTT."""
    no_coalescence = replace(RFC_COMPLIANT, name="no-coalescence", coalescence=CoalescenceMode.NONE)

    def run():
        with_coalescence = simulate_handshake("a.example", borderline_chain, RFC_COMPLIANT, CLIENT)
        without = simulate_handshake("a.example", borderline_chain, no_coalescence, CLIENT)
        return with_coalescence, without

    with_coalescence, without = benchmark(run)
    print()
    print(f"  coalescence on : {with_coalescence.handshake_class.value}, "
          f"{with_coalescence.trace.server_bytes_total} B")
    print(f"  coalescence off: {without.handshake_class.value}, "
          f"{without.trace.server_bytes_total} B "
          f"({without.trace.plan.padding_bytes_first_rtt} B padding)")
    assert with_coalescence.handshake_class.value == "1-RTT"
    assert without.trace.server_bytes_total >= with_coalescence.trace.server_bytes_total


def test_bench_ablation_padding_accounting(benchmark):
    """Excluding padding from the limit check produces >3x first flights."""
    honest = replace(CLOUDFLARE_LIKE, name="cdn-honest", count_padding_against_limit=True)
    cdn_chain = default_hierarchy().profiles["Cloudflare ECC CA-3"].issue("ablation-cdn.example")

    def run():
        cheating = simulate_handshake("a.example", cdn_chain, CLOUDFLARE_LIKE, CLIENT)
        compliant = simulate_handshake("a.example", cdn_chain, honest, CLIENT)
        return cheating, compliant

    cheating, compliant = benchmark(run)
    print()
    print(f"  padding excluded from check: {cheating.handshake_class.value} "
          f"({cheating.trace.first_rtt_amplification:.2f}x)")
    print(f"  padding counted (RFC):       {compliant.handshake_class.value} "
          f"({compliant.trace.first_rtt_amplification:.2f}x)")
    assert cheating.trace.first_rtt_amplification > 3.0
    assert compliant.trace.first_rtt_amplification <= 3.0


def test_bench_ablation_retransmission_bound(benchmark, large_chain):
    """Bounding retransmissions to unvalidated clients caps the amplifier."""

    def run():
        unbounded = simulate_unvalidated_probe("a.example", large_chain, MVFST_LIKE)
        bounded = simulate_unvalidated_probe("a.example", large_chain, MVFST_PATCHED)
        compliant = simulate_unvalidated_probe("a.example", large_chain, RFC_COMPLIANT)
        return unbounded, bounded, compliant

    unbounded, bounded, compliant = benchmark(run)
    print()
    print(f"  unbounded resends (mvfst-like): {unbounded.amplification_factor:5.1f}x")
    print(f"  single flight (patched):        {bounded.amplification_factor:5.1f}x")
    print(f"  limit enforced (RFC):           {compliant.amplification_factor:5.1f}x")
    assert unbounded.amplification_factor > 2 * bounded.amplification_factor
    assert compliant.amplification_factor <= 3.5


def test_bench_ablation_certificate_compression(benchmark, large_chain):
    """RFC 8879 turns the dominant large-chain deployment back into 1-RTT."""
    server = RFC_COMPLIANT  # supports brotli

    def run():
        plain = simulate_handshake("a.example", large_chain, server, CLIENT)
        compressed = simulate_handshake("a.example", large_chain, server, COMPRESSING_CLIENT)
        return plain, compressed

    plain, compressed = benchmark(run)
    print()
    print(f"  without compression: {plain.handshake_class.value}, {plain.trace.server_bytes_total} B")
    print(f"  with brotli:         {compressed.handshake_class.value}, {compressed.trace.server_bytes_total} B")
    assert plain.handshake_class.value == "Multi-RTT"
    assert compressed.handshake_class.value == "1-RTT"
    assert compressed.trace.server_bytes_total < plain.trace.server_bytes_total
