"""Benchmark: Figure 13 — handshake classification per rank group."""

from repro.analysis.figures import figure13


def test_bench_figure13(benchmark, campaign_results):
    result = benchmark(figure13.compute, campaign_results.handshakes)
    print()
    print(result.render_text())
    assert len(result.group_labels) >= 5
