"""Benchmark: Figure 9 — amplification factors of incomplete (spoofed) handshakes."""

from repro.analysis.figures import figure09


def test_bench_figure09(benchmark, campaign_results):
    result = benchmark(figure09.compute, campaign_results.backscatter)
    print()
    print(result.render_text())
    assert result.maximum("meta") > result.maximum("cloudflare")
