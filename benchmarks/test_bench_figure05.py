"""Benchmark: Figure 5 — TLS vs QUIC payload split of multi-RTT handshakes."""

from repro.analysis.figures import figure05


def test_bench_figure05(benchmark, campaign_results):
    result = benchmark(figure05.compute, campaign_results.handshakes)
    print()
    print(result.render_text())
    assert result.share_tls_alone_exceeds > 0.7
