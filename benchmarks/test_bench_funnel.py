"""Benchmark: the §3.1/§3.2 measurement funnel (names → certificates → QUIC)."""

from repro.analysis.figures import funnel


def test_bench_funnel(benchmark, campaign_results):
    result = benchmark(
        funnel.compute,
        campaign_results.https_scan.funnel,
        len(campaign_results.quic_deployments()),
    )
    print()
    print(result.render_text())
    assert 0.9 < result.resolved_share <= 1.0
    assert 0.15 < result.quic_share < 0.30
