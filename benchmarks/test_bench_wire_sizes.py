"""Micro-benchmarks of the wire-size hot path.

The measurement campaign spends most of its time asking packets and datagrams
for their sizes and building server first flights.  These benchmarks pin the
cost of the three layers — varint arithmetic, packet-size computation and
flight-plan construction (cold and cached) — so regressions in the memoized
paths are visible in isolation.
"""

from repro.quic.connection_id import ConnectionId
from repro.quic.frames import AckFrame, CryptoFrame
from repro.quic.packet import InitialPacket
from repro.quic.profiles import RFC_COMPLIANT
from repro.quic.server import FlightPlanCache, QuicServer
from repro.quic.varint import varint_size
from repro.tls.handshake_messages import ClientHello
from repro.x509.ca import default_hierarchy

#: Mixed small/large values covering all four varint length classes.
_VARINT_VALUES = tuple(range(0, 70_000, 7)) + tuple(
    1 << shift for shift in range(17, 62, 4)
)


def test_bench_varint_size(benchmark):
    def run() -> int:
        total = 0
        for value in _VARINT_VALUES:
            total += varint_size(value)
        return total

    assert benchmark(run) > 0


def test_bench_packet_size(benchmark):
    """Construction plus first size computation (the campaign's usage pattern).

    Frames are built inside the loop: the campaign creates fresh frames per
    packet, and reusing instances here would measure only their cached sizes.
    """
    dcid = ConnectionId.generate("bench:dcid", 8)
    scid = ConnectionId.generate("bench:scid", 8)
    crypto_data = bytes(1100)

    def run() -> int:
        frames = (AckFrame(0), CryptoFrame(offset=0, data=crypto_data))
        packet = InitialPacket(dcid, scid, packet_number=0, frames=frames)
        return packet.size

    assert benchmark(run) > 1100


def _bench_chain():
    profile = default_hierarchy().profiles["Let's Encrypt R3 + cross-signed X1"]
    return profile.issue("bench-flight.example")


def test_bench_flight_plan_cold(benchmark):
    """Full flight build: TLS messages, compression, packetisation, padding."""
    chain = _bench_chain()
    hello = ClientHello(server_name="bench-flight.example")

    def run():
        server = QuicServer(
            "bench-flight.example", chain, RFC_COMPLIANT, flight_cache=FlightPlanCache()
        )
        return server.respond_to_initial(hello, client_initial_size=1362)

    plan = benchmark(run)
    assert plan.first_rtt_bytes > 0


def test_bench_flight_plan_cached(benchmark):
    """The sweep's steady state: every flight request is a cache hit."""
    chain = _bench_chain()
    hello = ClientHello(server_name="bench-flight.example")
    cache = FlightPlanCache()

    def run():
        server = QuicServer(
            "bench-flight.example", chain, RFC_COMPLIANT, flight_cache=cache
        )
        return server.respond_to_initial(hello, client_initial_size=1362)

    plan = benchmark(run)
    assert plan.first_rtt_bytes > 0
    assert cache.cache_info().hits > 0
