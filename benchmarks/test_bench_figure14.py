"""Benchmark: Figure 14 — cruise-liner certificates among QUIC services."""

from repro.analysis.figures import figure14


def test_bench_figure14(benchmark, campaign_results):
    result = benchmark(figure14.compute, campaign_results.quic_deployments())
    print()
    print(result.render_text())
    assert result.share_san_below_10pct > 0.5
