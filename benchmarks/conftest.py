"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper from a
single shared measurement campaign (built once per benchmark session).  The
population size is chosen so the whole harness completes in well under a
minute while keeping every distribution statistically meaningful.
"""

from __future__ import annotations

import os

import pytest

from repro.scanners.orchestrator import CampaignResults, MeasurementCampaign
from repro.webpki.population import InternetPopulation, PopulationConfig, generate_population

#: Population size used by the benchmark harness.  Overridable so CI smoke
#: jobs can run the full harness on a small campaign.
BENCH_POPULATION_SIZE = int(os.environ.get("REPRO_BENCH_POPULATION_SIZE", "2500"))

#: Sweep sample size of the shared campaign fixture (small-campaign knob).
BENCH_SWEEP_SAMPLES = int(os.environ.get("REPRO_BENCH_SWEEP_SAMPLES", "250"))

#: Worker processes for the shared campaign fixture.  Unset (the tier-1/CI
#: default) keeps the single-process serial path; the sharded runner merges to
#: byte-identical results, so setting it only changes wall time.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None

#: Deployments per scan shard when the sharded runner is active.
BENCH_SHARD_SIZE = int(os.environ.get("REPRO_BENCH_SHARD_SIZE", "0")) or None


@pytest.fixture(scope="session")
def population() -> InternetPopulation:
    return generate_population(PopulationConfig(size=BENCH_POPULATION_SIZE, seed=2022))


@pytest.fixture(scope="session")
def campaign_results(population: InternetPopulation) -> CampaignResults:
    campaign = MeasurementCampaign(
        population=population,
        run_sweep=True,
        sweep_sample_size=BENCH_SWEEP_SAMPLES,
        spoofed_targets_per_provider=40,
        workers=BENCH_WORKERS,
        shard_size=BENCH_SHARD_SIZE,
    )
    return campaign.run()
