"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper from a
single shared measurement campaign (built once per benchmark session).  The
population size is chosen so the whole harness completes in well under a
minute while keeping every distribution statistically meaningful.
"""

from __future__ import annotations

import pytest

from repro.scanners.orchestrator import CampaignResults, MeasurementCampaign
from repro.webpki.population import InternetPopulation, PopulationConfig, generate_population

#: Population size used by the benchmark harness.
BENCH_POPULATION_SIZE = 2500


@pytest.fixture(scope="session")
def population() -> InternetPopulation:
    return generate_population(PopulationConfig(size=BENCH_POPULATION_SIZE, seed=2022))


@pytest.fixture(scope="session")
def campaign_results(population: InternetPopulation) -> CampaignResults:
    campaign = MeasurementCampaign(
        population=population,
        run_sweep=True,
        sweep_sample_size=250,
        spoofed_targets_per_provider=40,
    )
    return campaign.run()
