"""Benchmark: §4.3 — active scan of the Meta /24 (three response groups)."""

from repro.analysis.figures import meta_prefix


def test_bench_meta_prefix(benchmark, campaign_results):
    result = benchmark(meta_prefix.compute, campaign_results.meta_probe_before)
    print()
    print(result.render_text())
    assert result.mean_amplification(3) > result.mean_amplification(2) > 3.0
