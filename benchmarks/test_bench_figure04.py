"""Benchmark: Figure 4 — first-RTT amplification factors of complete handshakes."""

from repro.analysis.figures import figure04


def test_bench_figure04(benchmark, campaign_results):
    result = benchmark(figure04.compute, campaign_results.handshakes)
    print()
    print(result.render_text())
    assert 3.0 < result.median < 6.0
