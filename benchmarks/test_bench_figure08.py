"""Benchmark: Figure 8 — mean certificate field sizes by certificate type."""

from repro.analysis.figures import figure08


def test_bench_figure08(benchmark, campaign_results):
    result = benchmark(figure08.compute, campaign_results.quic_deployments())
    print()
    print(result.render_text())
    assert result.large_chain_nonleaf_heaviest
