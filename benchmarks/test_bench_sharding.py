"""Benchmark: 1-vs-N-worker wall time of the sharded campaign runner.

Measures the full per-domain pipeline (stages 1–4 plus the parent-side
telescope stage) over a 20k population — the ROADMAP's reference scale — once
single-process and once with ``REPRO_BENCH_SHARDING_WORKERS`` processes.  Both
variants produce byte-identical results (tests/test_sharding.py asserts it);
this benchmark only compares wall time.

On single-core machines the multi-process variant is expected to *lose*: the
per-domain compute serialises anyway and the worker→parent result transfer is
added overhead.  The win appears with real cores; see docs/PERFORMANCE.md for
the methodology and reference numbers.

Knobs (environment):
  REPRO_BENCH_SHARDING_SIZE     population size (default 20000)
  REPRO_BENCH_SHARDING_WORKERS  worker count of the N-worker variant (default 2)
"""

from __future__ import annotations

import os

import pytest

from repro.scanners.orchestrator import MeasurementCampaign
from repro.webpki.population import PopulationConfig, generate_population

SHARDING_BENCH_SIZE = int(os.environ.get("REPRO_BENCH_SHARDING_SIZE", "20000"))
SHARDING_BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_SHARDING_WORKERS", "2"))


@pytest.fixture(scope="module")
def sharding_population():
    return generate_population(PopulationConfig(size=SHARDING_BENCH_SIZE, seed=2022))


def _run_campaign(population, workers: int) -> None:
    MeasurementCampaign(
        population=population,
        run_sweep=False,
        spoofed_targets_per_provider=40,
        workers=workers,
    ).run()


@pytest.mark.benchmark(group="sharding")
def test_bench_campaign_one_worker(benchmark, sharding_population):
    benchmark.pedantic(
        _run_campaign, args=(sharding_population, 1), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="sharding")
def test_bench_campaign_n_workers(benchmark, sharding_population):
    benchmark.pedantic(
        _run_campaign,
        args=(sharding_population, SHARDING_BENCH_WORKERS),
        rounds=1,
        iterations=1,
    )


@pytest.mark.benchmark(group="sharding")
def test_bench_streaming_population_generation(benchmark):
    """Streaming generation throughput (the 100k–1M ingest path)."""
    from repro.webpki.population import iter_population_shards

    def consume() -> int:
        total = 0
        for shard in iter_population_shards(PopulationConfig(size=4096, seed=7)):
            total += len(shard)
        return total

    assert benchmark.pedantic(consume, rounds=1, iterations=1) == 4096
