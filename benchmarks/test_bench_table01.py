"""Benchmark: Table 1 — browser Initial sizes and certificate-compression support."""

from repro.analysis.figures import table01
from repro.tls.cert_compression import CertificateCompressionAlgorithm


def test_bench_table01(benchmark, campaign_results):
    result = benchmark(table01.compute, campaign_results.compression)
    print()
    print(result.render_text())
    assert result.support_shares[CertificateCompressionAlgorithm.BROTLI] > 0.85
