"""Benchmark: an N-scenario grid sweep vs N independent campaigns.

Times the two ways to produce the same per-scenario reports — the
cross-scenario shard-reuse path (:func:`repro.scanners.orchestrator.run_grid_campaign`:
one generation pass per shard, every member transform replayed against it)
against one full streamed campaign per member.  The outputs are byte-identical
(tests/test_scenario_grid.py pins it); this module only compares wall time,
the per-phase split lives in ``scripts/profile_campaign.py --phases
--scenario-grid`` and the committed numbers in ``BENCH_campaign.json``'s
``scenario_sweep`` section.

Knobs (environment):
  REPRO_BENCH_GRID_SIZE  population size swept per variant (default 2500)
"""

from __future__ import annotations

import os

import pytest

from repro.scanners import MeasurementCampaign, run_grid_campaign
from repro.scenarios.grid import WHAT_IF_GRID
from repro.webpki.population import PopulationConfig

GRID_BENCH_SIZE = int(os.environ.get("REPRO_BENCH_GRID_SIZE", "2500"))

_CONFIG = PopulationConfig(size=GRID_BENCH_SIZE, seed=2022)


def _run_grid() -> int:
    results = run_grid_campaign(
        WHAT_IF_GRID, config=_CONFIG, scan_backend="columnar"
    )
    return sum(r.scan.quic_count for r in results.values())


def _run_independent() -> int:
    quic = 0
    for scenario in WHAT_IF_GRID:
        results = MeasurementCampaign(
            population_config=scenario.population_config(base=_CONFIG),
            stream=True,
            scan_backend="columnar",
        ).run()
        quic += results.scan.quic_count
    return quic


@pytest.mark.benchmark(group="scenario-sweep")
def test_bench_grid_sweep(benchmark):
    benchmark.pedantic(_run_grid, rounds=1, iterations=1)


@pytest.mark.benchmark(group="scenario-sweep")
def test_bench_independent_campaigns(benchmark):
    benchmark.pedantic(_run_independent, rounds=1, iterations=1)
