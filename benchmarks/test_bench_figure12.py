"""Benchmark: Figure 12 — QUIC / HTTPS-only deployment shares per rank group."""

from repro.analysis.figures import figure12


def test_bench_figure12(benchmark, campaign_results):
    deployments = list(campaign_results.population.deployments)
    result = benchmark(figure12.compute, deployments)
    print()
    print(result.render_text())
    assert 0.15 < result.mean_quic_share < 0.30
