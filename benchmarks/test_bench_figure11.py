"""Benchmark: Figure 11 — Meta per-host amplification before/after disclosure."""

from repro.analysis.figures import figure11


def test_bench_figure11(benchmark, campaign_results):
    result = benchmark(
        figure11.compute, campaign_results.meta_probe_before, campaign_results.meta_probe_after
    )
    print()
    print(result.render_text())
    assert result.before.max_amplification > result.after.max_amplification
