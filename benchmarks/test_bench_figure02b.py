"""Benchmark: Figure 2(b) — CDFs of X.509 certificate field sizes."""

from repro.analysis.figures import figure02b


def test_bench_figure02b(benchmark, campaign_results):
    certificates = figure02b.certificates_from_results(campaign_results)
    result = benchmark(figure02b.compute, certificates)
    print()
    print(result.render_text())
    assert result.ordering_by_median()[0] == "Extensions"
