"""Benchmark: Figure 3 — handshake classes across the client Initial-size sweep."""

from repro.analysis.figures import figure03
from repro.quic.handshake import HandshakeClass


def test_bench_figure03(benchmark, campaign_results):
    result = benchmark(figure03.compute, campaign_results.sweep)
    print()
    print(result.render_text())
    size = result.initial_sizes()[len(result.initial_sizes()) // 2]
    assert result.share(size, HandshakeClass.AMPLIFICATION) > 0.4
    assert result.share(size, HandshakeClass.MULTI_RTT) > 0.2
