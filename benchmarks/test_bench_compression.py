"""Benchmark: the §4.2 certificate-compression experiment (synthetic + wild)."""

from repro.analysis.figures import compression


def test_bench_compression(benchmark, campaign_results):
    result = benchmark(
        compression.compute,
        campaign_results.quic_deployments(),
        campaign_results.compression,
    )
    print()
    print(result.render_text())
    assert result.share_below_limit_compressed > 0.95
    assert 0.5 < result.median_synthetic_rate < 0.85
