"""Benchmark: Figure 6 — certificate chain size distributions by QUIC support."""

from repro.analysis.figures import figure06


def test_bench_figure06(benchmark, campaign_results):
    result = benchmark(
        figure06.compute,
        campaign_results.quic_deployments(),
        campaign_results.https_only_deployments(),
    )
    print()
    print(result.render_text())
    assert result.quic_median < result.https_only_median
    assert 0.2 < result.share_exceeding_limit < 0.5
