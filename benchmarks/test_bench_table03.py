"""Benchmark: Table 3 — history of the anti-amplification limit across QUIC drafts."""

from repro.analysis.figures import table03


def test_bench_table03(benchmark):
    result = benchmark(table03.compute)
    print()
    print(result.render_text())
    assert len(result.rows) == 5
