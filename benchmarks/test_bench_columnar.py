"""Benchmark: object vs columnar shard scan over the same deployments.

Times exactly what the streaming pipeline pays per shard — the object path
as ``scan_shard`` + ``summarize_shard`` (stages 1–4 over real DNS/TLS/QUIC
fabric objects, then the reduction summary), the columnar path as the single
fused ``summarize_shard_columnar`` kernel.  Both produce identical
``ShardSummary`` values (tests/test_columnar_scan.py and
tests/test_properties.py pin it); this module only compares wall time, so
perf PRs can quote a like-for-like per-shard number next to the end-to-end
phase breakdown of ``scripts/profile_campaign.py --phases``.

Knobs (environment):
  REPRO_BENCH_COLUMNAR_SIZE  population size scanned per variant (default 2500)
"""

from __future__ import annotations

import os

import pytest

from repro.scanners.columnar import summarize_shard_columnar
from repro.scanners.sharding import DEFAULT_SHARD_SIZE, ShardTask, plan_shards, scan_shard
from repro.scanners.streaming import ReductionSpec, summarize_shard
from repro.webpki.population import PopulationConfig

COLUMNAR_BENCH_SIZE = int(os.environ.get("REPRO_BENCH_COLUMNAR_SIZE", "2500"))

_SPEC = ReductionSpec()


@pytest.fixture(scope="module")
def shard_work():
    """The campaign's shards with their deployments pre-resolved, so both
    variants time scanning only (generation is excluded)."""
    config = PopulationConfig(size=COLUMNAR_BENCH_SIZE, seed=2022)
    work = []
    for shard in plan_shards(config.size, DEFAULT_SHARD_SIZE):
        task = ShardTask(
            index=shard.index,
            population_config=config,
            start=shard.start,
            stop=shard.stop,
        )
        work.append((task, tuple(task.resolve_deployments())))
    return work


def _scan_object(work) -> int:
    quic = 0
    for task, deployments in work:
        scan = scan_shard(task, deployments=deployments)
        summary = summarize_shard(task, deployments, scan, _SPEC)
        quic += summary.quic_count
    return quic


def _scan_columnar(work) -> int:
    quic = 0
    for task, deployments in work:
        summary = summarize_shard_columnar(task, deployments, _SPEC)
        quic += summary.quic_count
    return quic


@pytest.mark.benchmark(group="columnar")
def test_bench_shard_scan_object(benchmark, shard_work):
    benchmark.pedantic(_scan_object, args=(shard_work,), rounds=1, iterations=1)


@pytest.mark.benchmark(group="columnar")
def test_bench_shard_scan_columnar(benchmark, shard_work):
    benchmark.pedantic(_scan_columnar, args=(shard_work,), rounds=1, iterations=1)
