"""Benchmark: Figure 7 — top-10 parent certificate chains (QUIC and HTTPS-only)."""

from repro.analysis.figures import figure07


def test_bench_figure07a(benchmark, campaign_results):
    result = benchmark(figure07.compute, campaign_results.quic_deployments(), "QUIC services")
    print()
    print(result.render_text())
    assert result.top10_coverage > 0.9
    assert "Cloudflare" in result.rows[0].label


def test_bench_figure07b(benchmark, campaign_results):
    result = benchmark(
        figure07.compute, campaign_results.https_only_deployments(), "HTTPS-only services"
    )
    print()
    print(result.render_text())
    assert 0.55 < result.top10_coverage < 0.9
