"""Benchmark: Table 2 — crypto algorithms and key lengths in use."""

from repro.analysis.figures import table02


def test_bench_table02(benchmark, campaign_results):
    result = benchmark(
        table02.compute,
        campaign_results.quic_deployments(),
        campaign_results.https_only_deployments(),
    )
    print()
    print(result.render_text())
    assert result.ecdsa_share("QUIC", "Leaf") > result.ecdsa_share("HTTPS-only", "Leaf")
