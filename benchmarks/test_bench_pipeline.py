"""Benchmarks of the measurement pipeline itself (not tied to one figure).

These quantify the cost of the main building blocks — certificate issuance,
handshake simulation, the quicreach classifier and the full report — so
regressions in the substrates show up even when the figures stay correct.
"""

import pytest

from repro.analysis.report import build_report
from repro.quic import QuicClientConfig, simulate_handshake
from repro.quic.profiles import RFC_COMPLIANT
from repro.scanners import QuicReach
from repro.webpki import PopulationConfig, generate_population
from repro.x509.ca import default_hierarchy


def test_bench_certificate_chain_issuance(benchmark):
    hierarchy = default_hierarchy()
    profile = hierarchy.profiles["Let's Encrypt R3 + cross-signed X1"]
    counter = iter(range(10**9))

    def issue():
        return profile.issue(f"bench-{next(counter)}.example")

    chain = benchmark(issue)
    assert chain.depth == 3


def test_bench_handshake_simulation(benchmark, campaign_results):
    deployment = campaign_results.quic_deployments()[0]
    client = QuicClientConfig(initial_datagram_size=1362)

    outcome = benchmark(
        simulate_handshake, deployment.domain, deployment.quic_chain,
        deployment.server_behavior, client,
    )
    assert outcome.handshake_class is not None


def test_bench_quicreach_scan_100_services(benchmark, campaign_results):
    network = campaign_results.population.build_network()
    scanner = QuicReach(network)
    targets = [
        (d.domain, d.rank, d.provider) for d in campaign_results.quic_deployments()[:100]
    ]

    observations = benchmark(scanner.scan_many, targets)
    assert len(observations) == len(targets)


def test_bench_population_generation_small(benchmark):
    result = benchmark(generate_population, PopulationConfig(size=300, seed=1))
    assert len(result) == 300


def test_bench_full_report(benchmark, campaign_results):
    report = benchmark(build_report, campaign_results)
    assert "figure06" in report.keys()
